"""The persistent derivation store and its cache adapter.

:class:`DerivationStore` owns one :class:`~repro.store.log.RecordLog`
(``derivations.log`` under the store directory) plus an in-memory index
rebuilt on open: ``(env digest, strategy, policy, canonical key) ->
(offset, length, fuel, kind)``.  Outcomes stay on disk -- a fetch
re-reads and re-verifies the record -- so a warm process pays memory
only for what it actually touches (``warm_cache`` is the exception: it
bulk-decodes one environment's records into a
:class:`~repro.core.cache.ResolutionCache` for cold-start elimination).

Eviction is LRU over the index against a byte budget of *live* records:
appending past ``max_bytes`` drops least-recently-used index entries
until live bytes fit.  Dead records stay in the file (append-only) until
:meth:`DerivationStore.compact` rewrites the log with exactly the live
set, which is also when quarantined byte ranges are reclaimed.

:class:`PersistentResolutionCache` is the adapter the resolution engine
sees: an ordinary :class:`ResolutionCache` whose misses read through to
the store and whose inserts write through (when the entry is
persistable; see :mod:`repro.store.codec`).  It is what
``repro run --cache-dir`` and the service's sessions use.

Counters: each store keeps a private ``stats`` object *and* reports into
the ambient :mod:`repro.obs` recorder slot, so per-request collection in
the service sees store activity without plumbing.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from ..core.cache import DEFAULT_MAX_ENTRIES, ResolutionCache
from ..core.env import ImplicitEnv
from ..errors import StoreCorruptionError
from ..obs import ResolutionStats
from ..obs.stats import (
    record_store_bytes,
    record_store_corrupt,
    record_store_eviction,
    record_store_hit,
    record_store_loads,
)
from ..service.wire import WireError
from . import codec
from .log import _FRAME_OVERHEAD, RecordLog, crc_bypass_enabled

#: Default byte budget for live records (64 MiB).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

LOG_NAME = "derivations.log"


class _DanglingRef(StoreCorruptionError):
    """A record references a child that is no longer indexed.

    Distinguished from real corruption: eviction legitimately removes
    children out from under referencing parents, so a dangling parent is
    *dropped* (it can never be served again) without counting toward
    ``store_corrupt_records`` or failing ``verify``.
    """


class _IndexEntry:
    __slots__ = ("offset", "length", "min_fuel", "is_success")

    def __init__(self, offset: int, length: int, min_fuel: int, is_success: bool):
        self.offset = offset
        self.length = length
        self.min_fuel = min_fuel
        self.is_success = is_success

    @property
    def frame_bytes(self) -> int:
        return _FRAME_OVERHEAD + self.length


class DerivationStore:
    """A directory holding persisted resolution outcomes (module docs)."""

    def __init__(
        self,
        directory: str,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        read_only: bool = False,
    ):
        if not read_only:
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.max_bytes = max_bytes
        self.read_only = read_only
        self.stats = ResolutionStats()
        self._lock = threading.RLock()
        #: index in LRU order (oldest first); dict preserves insertion.
        self._index: dict[tuple, _IndexEntry] = {}
        #: env digest -> ordered set of index keys, for warm-up sweeps.
        self._by_env: dict[str, dict[tuple, None]] = {}
        self._live_bytes = 0
        self.log = RecordLog(
            os.path.join(directory, LOG_NAME), kind="derivations", read_only=read_only
        )
        self._load_index()

    # -- open-time index rebuild ----------------------------------------

    def _load_index(self) -> None:
        corrupt = len(self.log.quarantined)
        for offset, payload in self.log.scan():
            try:
                record = codec.decode_record(payload)
            except StoreCorruptionError:
                corrupt += 1
                continue
            self._adopt(record.index_key(), _IndexEntry(
                offset, len(payload), record.min_fuel, record.is_success
            ))
        if corrupt:
            self.stats.store_corrupt_records += corrupt
            record_store_corrupt(corrupt)

    def _adopt(self, ikey: tuple, entry: _IndexEntry) -> None:
        previous = self._index.pop(ikey, None)
        if previous is not None:
            self._live_bytes -= previous.frame_bytes
        self._index[ikey] = entry
        self._live_bytes += entry.frame_bytes
        self._by_env.setdefault(ikey[0], {})[ikey] = None

    # -- the read path ---------------------------------------------------

    def fetch(self, key: tuple, fuel: int) -> tuple[Any, bool, int] | None:
        """Look ``key`` up on disk: ``(outcome, is_success, min_fuel)``.

        Returns ``None`` on a miss, on insufficient fuel, or when the
        record no longer verifies (it is quarantined, never raised --
        unless CRC bypass is on, in which case garbled records surface
        as :class:`~repro.errors.StoreCorruptionError`, the fuzz fault
        arm's probe).
        """
        witness = key[1]
        if not codec.witness_is_bare(witness):
            return None
        ikey = codec.index_key(
            codec.env_digest(key[0]), key[3], key[4], key[2]
        )
        with self._lock:
            entry = self._index.get(ikey)
            if entry is None or fuel < entry.min_fuel:
                return None
            payload = self.log.read_payload(entry.offset, entry.length)
            if payload is None:
                self._quarantine(ikey, entry)
                return None
            try:
                record = codec.decode_record(payload)
                outcome = record.outcome(self._deref_for(ikey[:3], {}, set()))
            except _DanglingRef:
                self._drop_entry(ikey, entry)
                return None
            except Exception as exc:
                if crc_bypass_enabled():
                    raise StoreCorruptionError(
                        f"store served a garbled record with CRC bypass on: {exc}"
                    ) from exc
                self._quarantine(ikey, entry)
                return None
            # LRU touch: re-insert at the young end.
            self._index.pop(ikey)
            self._index[ikey] = entry
            self.stats.store_hits += 1
            record_store_hit()
            return outcome, record.is_success, entry.min_fuel

    def _drop_entry(self, ikey: tuple, entry: _IndexEntry) -> None:
        # Caller holds ``self._lock``.  Unservable but not corrupt (a
        # dangling reference after eviction): no corruption accounting.
        if self._index.pop(ikey, None) is not None:
            self._live_bytes -= entry.frame_bytes

    def _quarantine(self, ikey: tuple, entry: _IndexEntry) -> None:
        # Caller holds ``self._lock``.
        self._index.pop(ikey, None)
        self._live_bytes -= entry.frame_bytes
        self.log.quarantined.append((entry.offset, entry.frame_bytes))
        self.stats.store_corrupt_records += 1
        record_store_corrupt()

    def _deref_for(self, prefix: tuple, memo: dict, visiting: set):
        """A premise dereferencer bound to one (digest, strategy, policy).

        Resolves ``["ref", ckey]`` premises through the index, re-reading
        and decoding the referenced record (recursively -- references
        nest).  ``memo`` makes a warm sweep linear in records; the
        ``visiting`` set turns a (corruption-made) reference cycle into
        :class:`StoreCorruptionError` instead of unbounded recursion.
        Caller holds ``self._lock``.
        """

        def deref(ckey: tuple):
            ik = prefix + (ckey,)
            hit = memo.get(ik)
            if hit is not None:
                return hit
            if ik in visiting:
                raise StoreCorruptionError("cyclic premise reference")
            entry = self._index.get(ik)
            if entry is None:
                raise _DanglingRef(
                    "dangling premise reference (child record evicted or lost)"
                )
            payload = self.log.read_payload(entry.offset, entry.length)
            if payload is None:
                raise StoreCorruptionError("referenced record no longer verifies")
            record = codec.decode_record(payload)
            if not record.is_success:
                raise StoreCorruptionError("premise reference to a failure record")
            visiting.add(ik)
            try:
                outcome = record.outcome(deref)
            finally:
                visiting.discard(ik)
            memo[ik] = outcome
            return outcome

        return deref

    def warm_cache(
        self, cache: ResolutionCache, env: ImplicitEnv
    ) -> int:
        """Bulk-load every record for ``env`` into ``cache``; returns the
        count.  The cold-start eliminator: a restarted process calls this
        once per environment instead of re-running proof search."""
        witness = env.payload_witness()
        if not codec.witness_is_bare(witness):
            return 0
        fingerprint = env.fingerprint()
        digest = codec.env_digest(fingerprint)
        loaded = 0
        #: One memo for the whole sweep: referenced children decode once
        #: no matter how many parents share them.
        memo: dict[tuple, Any] = {}
        with self._lock:
            for ikey in tuple(self._by_env.get(digest, ())):
                entry = self._index.get(ikey)
                if entry is None:
                    continue
                payload = self.log.read_payload(entry.offset, entry.length)
                if payload is None:
                    self._quarantine(ikey, entry)
                    continue
                try:
                    record = codec.decode_record(payload)
                    outcome = record.outcome(
                        self._deref_for(ikey[:3], memo, set())
                    )
                except _DanglingRef:
                    self._drop_entry(ikey, entry)
                    continue
                except Exception as exc:
                    if crc_bypass_enabled():
                        raise StoreCorruptionError(
                            f"store warmed a garbled record with CRC bypass on: {exc}"
                        ) from exc
                    self._quarantine(ikey, entry)
                    continue
                if record.is_success:
                    memo[ikey] = outcome
                key = (fingerprint, witness, record.ckey, record.strategy, record.policy)
                cache.seed(key, outcome, record.is_success, entry.min_fuel, env)
                loaded += 1
        if loaded:
            self.stats.store_loads += loaded
            record_store_loads(loaded)
        return loaded

    # -- the write path --------------------------------------------------

    def persist(
        self, key: tuple, outcome: Any, is_success: bool, min_fuel: int
    ) -> bool:
        """Append one cache entry if it is persistable and new."""
        if self.read_only:
            return False
        if not codec.persistable(outcome, is_success, key[1]):
            return False
        digest = codec.env_digest(key[0])
        ikey = codec.index_key(digest, key[3], key[4], key[2])
        prefix = ikey[:3]
        with self._lock:
            if ikey in self._index:
                return False
            try:
                payload = codec.encode_record(
                    key,
                    outcome,
                    is_success,
                    min_fuel,
                    have_ref=lambda ck: prefix + (ck,) in self._index,
                )
            except WireError:
                return False  # types the wire codec cannot carry
            offset, length = self.log.append(payload)
            entry = _IndexEntry(offset, length, min_fuel, is_success)
            self._adopt(ikey, entry)
            self.stats.store_bytes += entry.frame_bytes
            record_store_bytes(entry.frame_bytes)
            self._enforce_budget()
        return True

    def _enforce_budget(self) -> None:
        # Caller holds ``self._lock``.  Evict least-recently-used index
        # entries until live records fit the byte budget; the file itself
        # shrinks at the next compaction.
        evicted = 0
        while self._live_bytes > self.max_bytes and len(self._index) > 1:
            ikey, entry = next(iter(self._index.items()))
            self._index.pop(ikey)
            self._live_bytes -= entry.frame_bytes
            evicted += 1
        if evicted:
            self.stats.store_evictions += evicted
            record_store_eviction(evicted)

    # -- maintenance -----------------------------------------------------

    def verify(self) -> dict:
        """Full integrity pass: re-read and decode every live record.

        Returns a report dict; ``report["quarantined"]`` counts records
        (and byte ranges) that failed CRC or decode -- the CI smoke job
        asserts this is non-zero after corrupting the log mid-file.
        """
        bad = 0
        dangling = 0
        checked = 0
        memo: dict[tuple, Any] = {}
        with self._lock:
            for ikey, entry in tuple(self._index.items()):
                checked += 1
                payload = self.log.read_payload(entry.offset, entry.length)
                if payload is None:
                    self._quarantine(ikey, entry)
                    bad += 1
                    continue
                try:
                    record = codec.decode_record(payload)
                    outcome = record.outcome(self._deref_for(ikey[:3], memo, set()))
                    if record.is_success:
                        memo[ikey] = outcome
                except _DanglingRef:
                    self._drop_entry(ikey, entry)
                    dangling += 1
                except Exception:
                    self._quarantine(ikey, entry)
                    bad += 1
            report = {
                "path": self.log.path,
                "schema": self.log.header.get("schema"),
                "records": len(self._index),
                "checked": checked,
                "quarantined": len(self.log.quarantined),
                "quarantined_now": bad,
                "dangling_dropped": dangling,
                "torn_tail_bytes": self.log.torn_tail_bytes,
                "file_bytes": self.log.size_bytes(),
                "live_bytes": self._live_bytes,
            }
        report["ok"] = report["quarantined"] == 0 and report["torn_tail_bytes"] == 0
        return report

    def compact(self) -> dict:
        """Rewrite the log with exactly the live records (LRU order
        preserved), reclaiming evicted and quarantined space."""
        with self._lock:
            payloads: list[bytes] = []
            survivors: list[tuple[tuple, _IndexEntry]] = []
            for ikey, entry in self._index.items():
                payload = self.log.read_payload(entry.offset, entry.length)
                if payload is None:
                    self.stats.store_corrupt_records += 1
                    record_store_corrupt()
                    continue
                payloads.append(payload)
                survivors.append((ikey, entry))
            before = self.log.size_bytes()
            self.log.replace_all(payloads)
            # Re-point the index at the rewritten offsets.
            self._index = {}
            self._by_env = {}
            self._live_bytes = 0
            for (ikey, entry), (offset, length) in zip(
                survivors, self.log.record_spans()
            ):
                self._adopt(
                    ikey, _IndexEntry(offset, length, entry.min_fuel, entry.is_success)
                )
            return {
                "records": len(self._index),
                "bytes_before": before,
                "bytes_after": self.log.size_bytes(),
            }

    def clear(self) -> dict:
        with self._lock:
            dropped = len(self._index)
            self.log.replace_all([])
            self._index = {}
            self._by_env = {}
            self._live_bytes = 0
            return {"dropped": dropped}

    def stats_view(self) -> dict:
        with self._lock:
            view = self.stats.as_dict()
            return {
                "records": len(self._index),
                "file_bytes": self.log.size_bytes(),
                "live_bytes": self._live_bytes,
                "quarantined": len(self.log.quarantined),
                "counters": {k: v for k, v in view.items() if k.startswith("store_")},
            }

    def close(self) -> None:
        self.log.close()

    def __enter__(self) -> "DerivationStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._index)


class PersistentResolutionCache(ResolutionCache):
    """A :class:`ResolutionCache` backed by a :class:`DerivationStore`.

    Misses read through to disk; inserts write through (persistable
    entries only).  Everything else -- fuel monotonicity, divergence
    refusal, thread safety -- is inherited unchanged, which is exactly
    the point: the resolution engine cannot tell it is talking to disk,
    and the ``store`` fuzz oracle holds it to that.
    """

    __slots__ = ("store",)

    def __init__(self, store: DerivationStore, max_entries: int = DEFAULT_MAX_ENTRIES):
        super().__init__(max_entries)
        self.store = store

    def get(self, key: tuple, fuel: int):
        entry = super().get(key, fuel)
        if entry is not None:
            return entry
        fetched = self.store.fetch(key, fuel)
        if fetched is None:
            return None
        outcome, is_success, min_fuel = fetched
        self.seed(key, outcome, is_success, min_fuel, None)
        return super().get(key, fuel)

    def put_success(self, key, derivation, env, fuel) -> None:
        super().put_success(key, derivation, env, fuel)
        self.store.persist(key, derivation, True, fuel)

    def put_failure(self, key, error, env, fuel) -> None:
        super().put_failure(key, error, env, fuel)  # raises on divergence
        self.store.persist(key, error, False, fuel)

    def warm(self, env: ImplicitEnv) -> int:
        """Preload this cache with every stored record for ``env``."""
        return self.store.warm_cache(self, env)
