"""The append-only record log under the persistent derivation store.

One log file is a **provenance header** followed by a sequence of
CRC-framed records:

.. code-block:: text

    +-------------+------------+--------------+------------+
    | MAGIC (11B) | hlen (4B)  | header JSON  | CRC32 (4B) |
    +-------------+------------+--------------+------------+
    | 0xA5 | plen (4B) | payload bytes | CRC32(payload) (4B) |
    +------+-----------+---------------+---------------------+
    | ... more records ...                                   |
    +--------------------------------------------------------+

All integers are big-endian.  The header carries the schema version and
the provenance triple (git commit, python version, package version --
the same meta pattern as ``benchmarks/report.py``); an incompatible or
unreadable header refuses to load with
:class:`~repro.errors.StoreSchemaError`.  Records, by contrast, are
**corruption tolerant** (the ISSUE's "never crash" clause):

* a *torn tail* -- an incomplete final frame from a crash mid-append --
  is truncated on a writable open and resumed from;
* a *garbled record* -- bad marker, bad CRC, or a length field pointing
  into nonsense -- is quarantined: the scanner counts it, remembers the
  byte span for ``repro cache verify``, and resynchronizes by searching
  forward for the next frame that passes its own CRC.

The log is **single-writer**: a pid lockfile (``<log>.lock``) guards
writable opens.  A second live opener gets
:class:`~repro.errors.StoreLockedError` (retryable, with a suggested
backoff); locks whose holder pid is dead are stolen silently.  Read-only
opens skip the lock so ``repro cache stats``/``verify`` work while a
server owns the store.

``set_crc_bypass`` mirrors ``service/wire.py``'s
``set_wire_corruption``: a test-only toggle that disables record
verification so the fuzz harness's ``store`` fault arm can prove that,
without CRCs, flipped bytes *would* reach resolution.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Iterator

from ..errors import StoreError, StoreLockedError, StoreSchemaError

MAGIC = b"REPROSTORE\n"
MARKER = 0xA5
SCHEMA_VERSION = 1
_LEN = struct.Struct(">I")
#: marker + payload length; the CRC trails the payload.
_FRAME_OVERHEAD = 1 + 4 + 4

_CRC_BYPASS = False


def set_crc_bypass(enabled: bool) -> bool:
    """Disable (or re-enable) record CRC verification; returns the old
    value.  Test-only: the fuzz harness's fault arm uses it to prove the
    quarantine path is load-bearing."""
    global _CRC_BYPASS
    previous = _CRC_BYPASS
    _CRC_BYPASS = bool(enabled)
    return previous


def crc_bypass_enabled() -> bool:
    return _CRC_BYPASS


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


def default_header(kind: str) -> dict:
    """A fresh provenance header (the ``report.py`` meta pattern)."""
    import platform
    import subprocess

    try:
        commit = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
    except Exception:
        commit = None
    return {
        "format": "repro-store/1",
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "commit": commit,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }


class RecordLog:
    """One append-only, CRC-framed log file (see module docs).

    Opening scans the whole file once: validates the header, truncates a
    torn tail (writable opens only), quarantines garbled records, and
    leaves ``self.quarantined`` / ``self.torn_tail_bytes`` describing
    what was skipped.  ``scan()`` then replays the surviving records for
    the owner to index.
    """

    def __init__(self, path: str, *, kind: str, read_only: bool = False):
        self.path = path
        self.kind = kind
        self.read_only = read_only
        self.header: dict = {}
        #: ``(offset, length)`` byte spans skipped by the quarantine scanner.
        self.quarantined: list[tuple[int, int]] = []
        self.torn_tail_bytes = 0
        self._records: list[tuple[int, int]] = []  # (offset, payload length)
        self._fh = None
        self._locked = False
        self._open()

    # -- lifecycle -------------------------------------------------------

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def _acquire_lock(self) -> None:
        for _ in range(2):  # second pass after stealing a stale lock
            try:
                fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._lock_holder()
                if holder is not None and _pid_alive(holder):
                    raise StoreLockedError(
                        f"store {self.path!r} is locked by live process "
                        f"{holder}; retry after backoff",
                        backoff_ms=100,
                    )
                try:  # stale: holder is dead (or the file is garbage)
                    os.unlink(self.lock_path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            self._locked = True
            return
        raise StoreLockedError(
            f"store {self.path!r} lock could not be acquired", backoff_ms=100
        )

    def _lock_holder(self) -> int | None:
        try:
            with open(self.lock_path) as fh:
                return int(fh.read().strip())
        except (OSError, ValueError):
            return None

    def _release_lock(self) -> None:
        if self._locked:
            try:
                os.unlink(self.lock_path)
            except FileNotFoundError:
                pass
            self._locked = False

    def _open(self) -> None:
        if not self.read_only:
            self._acquire_lock()
        try:
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
            if not exists:
                if self.read_only:
                    raise StoreError(f"no store at {self.path!r}")
                self.header = default_header(self.kind)
                self._write_fresh(self.header)
            mode = "rb" if self.read_only else "r+b"
            self._fh = open(self.path, mode)
            self._scan_all()
        except BaseException:
            self._release_lock()
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            raise

    def _write_fresh(self, header: dict) -> None:
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        with open(self.path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(_LEN.pack(len(blob)))
            fh.write(blob)
            fh.write(_LEN.pack(_crc(blob)))
            fh.flush()
            os.fsync(fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            if not self.read_only:
                self._fh.flush()
                try:
                    os.fsync(self._fh.fileno())
                except OSError:
                    pass
            self._fh.close()
            self._fh = None
        self._release_lock()

    def __enter__(self) -> "RecordLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scanning --------------------------------------------------------

    def _scan_all(self) -> None:
        fh = self._fh
        assert fh is not None
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        fh.seek(0)
        data = fh.read()  # one sequential read; the index stays offsets-only

        if data[: len(MAGIC)] != MAGIC:
            raise StoreSchemaError(
                f"{self.path!r} is not a derivation store (bad magic)"
            )
        pos = len(MAGIC)
        if size < pos + 4:
            raise StoreSchemaError(f"{self.path!r} has a truncated header")
        (hlen,) = _LEN.unpack_from(data, pos)
        pos += 4
        if size < pos + hlen + 4:
            raise StoreSchemaError(f"{self.path!r} has a truncated header")
        blob = data[pos : pos + hlen]
        pos += hlen
        (hcrc,) = _LEN.unpack_from(data, pos)
        pos += 4
        if _crc(blob) != hcrc:
            raise StoreSchemaError(f"{self.path!r} has a corrupt header")
        try:
            self.header = json.loads(blob.decode("utf-8"))
        except ValueError as exc:
            raise StoreSchemaError(f"{self.path!r} has an unreadable header") from exc
        schema = self.header.get("schema")
        if schema != SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{self.path!r} was written with schema version {schema}; "
                f"this build supports version {SCHEMA_VERSION} -- run "
                "`repro cache clear` to rebuild it"
            )
        if self.header.get("kind") != self.kind:
            raise StoreSchemaError(
                f"{self.path!r} holds {self.header.get('kind')!r} records, "
                f"expected {self.kind!r}"
            )

        self._body_start = pos
        records, quarantined, tail = _scan_records(data, pos)
        self._records = records
        self.quarantined = quarantined
        if tail and not self.read_only:
            # Torn tail: a crash mid-append.  Truncate and resume.
            self.torn_tail_bytes = size - tail[0]
            fh.truncate(tail[0])
            size = tail[0]
        self._end = size if not tail else tail[0]

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(offset, payload)`` for every surviving record."""
        for offset, plen in self._records:
            payload = self.read_payload(offset, plen)
            if payload is not None:
                yield offset, payload

    def read_payload(self, offset: int, length: int) -> bytes | None:
        """Re-read (and re-verify) one record's payload from disk.

        Returns ``None`` if the bytes no longer verify -- the caller
        treats that exactly like a quarantined record.  Under
        ``set_crc_bypass`` the unverified bytes are returned as-is.
        """
        fh = self._fh
        if fh is None:
            raise StoreError(f"store {self.path!r} is closed")
        fh.seek(offset)
        frame = fh.read(_FRAME_OVERHEAD + length)
        if len(frame) < _FRAME_OVERHEAD + length or frame[0] != MARKER:
            return None
        payload = frame[5 : 5 + length]
        (crc,) = _LEN.unpack_from(frame, 5 + length)
        if _crc(payload) != crc and not _CRC_BYPASS:
            return None
        return payload

    # -- writing ---------------------------------------------------------

    def append(self, payload: bytes) -> tuple[int, int]:
        """Append one record; returns ``(offset, payload length)``."""
        if self.read_only:
            raise StoreError(f"store {self.path!r} is read-only")
        fh = self._fh
        if fh is None:
            raise StoreError(f"store {self.path!r} is closed")
        fh.seek(self._end)
        frame = bytes([MARKER]) + _LEN.pack(len(payload)) + payload + _LEN.pack(
            _crc(payload)
        )
        fh.write(frame)
        fh.flush()
        offset = self._end
        self._end += len(frame)
        self._records.append((offset, len(payload)))
        return offset, len(payload)

    def replace_all(self, payloads: list[bytes]) -> None:
        """Atomically rewrite the log with ``payloads`` (compaction).

        Writes a sibling temp file with a fresh provenance header and
        renames it over the log, so a crash mid-compaction leaves the old
        log intact.
        """
        if self.read_only:
            raise StoreError(f"store {self.path!r} is read-only")
        tmp = self.path + ".compact"
        header = default_header(self.kind)
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(_LEN.pack(len(blob)))
            fh.write(blob)
            fh.write(_LEN.pack(_crc(blob)))
            for payload in payloads:
                fh.write(
                    bytes([MARKER])
                    + _LEN.pack(len(payload))
                    + payload
                    + _LEN.pack(_crc(payload))
                )
            fh.flush()
            os.fsync(fh.fileno())
        if self._fh is not None:
            self._fh.close()
        os.replace(tmp, self.path)
        self.header = header
        self.quarantined = []
        self.torn_tail_bytes = 0
        self._fh = open(self.path, "r+b")
        self._scan_all()

    def size_bytes(self) -> int:
        """Current log size in bytes (header included)."""
        return self._end

    def record_spans(self) -> list[tuple[int, int]]:
        """``(offset, payload length)`` of every surviving record."""
        return list(self._records)

    def record_count(self) -> int:
        return len(self._records)


def _scan_records(
    data: bytes, start: int
) -> tuple[list[tuple[int, int]], list[tuple[int, int]], tuple[int] | None]:
    """Scan record frames in ``data`` from ``start``.

    Returns ``(records, quarantined, torn_tail)`` where ``records`` and
    ``quarantined`` are ``(offset, length)`` lists and ``torn_tail`` is
    ``(offset,)`` of an incomplete final frame (``None`` if the file ends
    cleanly).  Recovery logic per the module docs: a complete frame with
    a bad CRC is quarantined in place; anything else resynchronizes by
    searching forward for the next self-consistent frame.
    """
    size = len(data)
    records: list[tuple[int, int]] = []
    quarantined: list[tuple[int, int]] = []
    pos = start
    while pos < size:
        frame = _try_frame(data, pos)
        if frame == "torn":
            # Incomplete final frame, no later valid frame: torn tail.
            nxt = _resync(data, pos + 1)
            if nxt is None:
                return records, quarantined, (pos,)
            quarantined.append((pos, nxt - pos))
            pos = nxt
            continue
        if frame is None:
            # Garbled framing: resync or give up on the remainder.
            nxt = _resync(data, pos + 1)
            if nxt is None:
                quarantined.append((pos, size - pos))
                return records, quarantined, None
            quarantined.append((pos, nxt - pos))
            pos = nxt
            continue
        plen, ok = frame
        if ok or _CRC_BYPASS:
            records.append((pos, plen))
        else:
            quarantined.append((pos, _FRAME_OVERHEAD + plen))
        pos += _FRAME_OVERHEAD + plen
    return records, quarantined, None


def _try_frame(data: bytes, pos: int) -> tuple[int, bool] | str | None:
    """Parse one frame at ``pos``: ``(payload length, crc ok)``, the
    sentinel ``"torn"`` for an incomplete final frame, or ``None`` for
    garbled framing."""
    size = len(data)
    if data[pos] != MARKER:
        return None
    if pos + 5 > size:
        return "torn"
    (plen,) = _LEN.unpack_from(data, pos + 1)
    end = pos + _FRAME_OVERHEAD + plen
    if end > size:
        return "torn"
    payload = data[pos + 5 : pos + 5 + plen]
    (crc,) = _LEN.unpack_from(data, pos + 5 + plen)
    return plen, _crc(payload) == crc


def _resync(data: bytes, start: int) -> int | None:
    """First offset ``>= start`` holding a fully CRC-valid frame."""
    size = len(data)
    pos = data.find(MARKER, start)
    while 0 <= pos < size:
        frame = _try_frame(data, pos)
        if isinstance(frame, tuple) and frame[1]:
            return pos
        pos = data.find(MARKER, pos + 1)
    return None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True
