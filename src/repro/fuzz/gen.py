"""Seeded, deterministic generators for the fuzz harness (`repro fuzz`).

Everything here is driven by one explicit ``random.Random`` instance and
a small size budget: no wall clocks, no global entropy, no dependence on
hash ordering.  The same ``(seed, index)`` pair therefore always yields
the *same* :class:`FuzzCase`, byte for byte once serialized -- the
determinism contract ``tests/fuzz/test_gen_determinism.py`` pins with a
golden seed-0 sample.

A case packages everything the oracle matrix consumes:

* ``frames`` -- a stack of rule sets, each entry a ``(expr, rho)``
  binding.  The *types* alone form an implicit environment (resolution
  oracles); the expressions make the same bindings runnable, so the case
  doubles as a well-typed core program (semantic oracles).
* ``query`` -- the type asked at the bottom of the program.  Coherent
  cases are built constructively (every rule's context is satisfiable
  from outer or same frames, no overlap within one frame), mirroring
  ``tests/property/strategies.py``; a configurable fraction of cases is
  deliberately *incoherent* (duplicate heads in one frame) or asks an
  unprovided query, so the failure paths of every engine pair are
  exercised too.

Serialization round-trips through the pretty printer and the core
parser (``pretty_type``/``parse_core_type``, ``pretty_expr``/
``parse_core_expr``), which the round-trip property tests already pin,
so a JSON artifact replays into a structurally equal case.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, replace
from typing import Iterator

from ..core.builders import ask, crule
from ..core.env import ImplicitEnv, OverlapPolicy
from ..core.parser import parse_core_expr, parse_core_type
from ..core.pretty import pretty_expr, pretty_type
from ..core.resolution import ResolutionStrategy
from ..core.terms import BoolLit, Expr, IntLit, PairE, RuleAbs, RuleApp, StrLit
from ..core.types import BOOL, CHAR, INT, STRING, TVar, Type, pair, rule

#: Artifact / corpus schema version (bump on incompatible change).
FORMAT_VERSION = 1

#: Ground base types with literal providers (CHAR is deliberately left
#: out so it can serve as the "never provided" failure probe).
_BASE_TYPES = (INT, BOOL, STRING)


def _literal_for(rng: random.Random, tau: Type) -> Expr:
    if tau is INT:
        return IntLit(rng.randrange(0, 100))
    if tau is BOOL:
        return BoolLit(rng.random() < 0.5)
    if tau is STRING:
        return StrLit(rng.choice(("x", "y", "fuzz", "")))
    raise ValueError(f"no literal provider for {tau}")


Binding = tuple[Expr, Type]


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario: an environment-as-program plus a query."""

    seed: int
    index: int
    frames: tuple[tuple[Binding, ...], ...]
    query: Type
    #: ``True`` when the generator deliberately introduced overlap
    #: within one frame (the case is expected to fail coherently).
    overlapping: bool = False

    # -- derived views -----------------------------------------------------

    def env(self) -> ImplicitEnv:
        """The implicit environment of the case (types only)."""
        env = ImplicitEnv.empty()
        for frame in self.frames:
            env = env.push([rho for _, rho in frame])
        return env

    def program(self) -> Expr:
        """The same bindings as a runnable core program.

        ``implicit frame_1 in ... implicit frame_n in ?query`` --
        built directly as rule application over a rule abstraction so
        duplicated context types (overlapping cases) are preserved
        rather than silently deduplicated by the ``implicit`` sugar.
        """
        body: Expr = ask(self.query)
        result = self.query
        for frame in reversed(self.frames):
            context = tuple(rho for _, rho in frame)
            body = RuleApp(RuleAbs(rule(result, context), body), tuple(frame))
        return body

    def rule_count(self) -> int:
        return sum(len(frame) for frame in self.frames)

    # -- serialization -----------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready description (stable key order, pretty-printed)."""
        return {
            "seed": self.seed,
            "index": self.index,
            "overlapping": self.overlapping,
            "frames": [
                [
                    {"expr": pretty_expr(e), "type": pretty_type(rho)}
                    for e, rho in frame
                ]
                for frame in self.frames
            ],
            "query": pretty_type(self.query),
        }

    def as_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @staticmethod
    def from_dict(payload: dict) -> "FuzzCase":
        frames = tuple(
            tuple(
                (parse_core_expr(b["expr"]), parse_core_type(b["type"]))
                for b in frame
            )
            for frame in payload["frames"]
        )
        return FuzzCase(
            seed=int(payload["seed"]),
            index=int(payload["index"]),
            frames=frames,
            query=parse_core_type(payload["query"]),
            overlapping=bool(payload.get("overlapping", False)),
        )


@dataclass(frozen=True)
class GenConfig:
    """Size budget and mix knobs of the generator (all deterministic)."""

    max_frames: int = 3
    max_rules_per_frame: int = 3
    max_query_nesting: int = 2
    #: Fraction of cases with a deliberately overlapping frame.
    overlap_fraction: float = 0.15
    #: Fraction of cases querying a type nothing provides.
    unprovided_fraction: float = 0.15
    policy: OverlapPolicy = OverlapPolicy.REJECT
    strategy: ResolutionStrategy = ResolutionStrategy.SYNTACTIC


DEFAULT_CONFIG = GenConfig()


def case_rng(seed: int, index: int) -> random.Random:
    """The per-case RNG: a pure function of ``(seed, index)``.

    Cases are independently seeded so that any prefix of a run -- or a
    single replayed index -- regenerates identically regardless of how
    many cases came before it (the ``--budget-s`` wall-clock cutoff can
    truncate a run without perturbing the cases it did reach).
    """
    return random.Random((seed & 0xFFFFFFFF) * 0x1_0000_0000 + (index & 0xFFFFFFFF))


def generate_case(
    seed: int, index: int, config: GenConfig = DEFAULT_CONFIG
) -> FuzzCase:
    """Generate the ``index``-th case of a run seeded with ``seed``."""
    rng = case_rng(seed, index)
    overlapping = rng.random() < config.overlap_fraction
    frames: list[tuple[Binding, ...]] = []
    provided: list[Type] = []  # heads available to later rules/queries
    has_poly_pair = False
    n_frames = rng.randint(1, config.max_frames)
    for _ in range(n_frames):
        frame: list[Binding] = []
        frame_heads: list[Type] = []
        n_rules = rng.randint(1, config.max_rules_per_frame)
        for _ in range(n_rules):
            choice = rng.random()
            if provided and choice < 0.30:
                # A rule deriving a pair type from an available head.
                dep = rng.choice(provided)
                base = rng.choice(_BASE_TYPES)
                head: Type = pair(dep, base)
                if any(h == head for h in frame_heads):
                    continue
                rho = rule(head, [dep])
                expr = crule(rho, PairE(ask(dep), _literal_for(rng, base)))
            elif not has_poly_pair and choice < 0.45:
                # The paper's polymorphic pair rule (at most one per case).
                a = TVar("a")
                head = pair(a, a)
                rho = rule(head, [a], ["a"])
                expr = crule(rho, PairE(ask(a), ask(a)))
                has_poly_pair = True
            else:
                head = rng.choice(_BASE_TYPES)
                if any(h == head for h in frame_heads):
                    continue
                rho = head
                expr = _literal_for(rng, head)
            frame.append((expr, rho))
            frame_heads.append(head)
        if not frame:
            base = rng.choice(_BASE_TYPES)
            frame.append((_literal_for(rng, base), base))
            frame_heads.append(base)
        frames.append(tuple(frame))
        provided = frame_heads + provided
    if overlapping:
        # Duplicate one ground entry inside one frame: same head, a
        # (possibly) different payload -- the paper's no_overlap failure.
        pos = rng.randrange(len(frames))
        dupable = [
            (e, rho) for e, rho in frames[pos] if rho in _BASE_TYPES
        ]
        if dupable:
            e, rho = rng.choice(dupable)
            frames[pos] = frames[pos] + ((_literal_for(rng, rho), rho),)
        else:
            frames[pos] = frames[pos] + (frames[pos][0],)
    query = _generate_query(rng, provided, has_poly_pair, config)
    return FuzzCase(
        seed=seed,
        index=index,
        frames=tuple(frames),
        query=query,
        overlapping=overlapping,
    )


def _generate_query(
    rng: random.Random,
    provided: list[Type],
    has_poly_pair: bool,
    config: GenConfig,
) -> Type:
    # Queries are ground: heads containing variables (the poly pair
    # rule, derived rules over it) provide *schemes*, not askable types.
    provided = [t for t in provided if not _all_names(t)]
    if rng.random() < config.unprovided_fraction or not provided:
        # CHAR is never provided; nesting it in a pair exercises the
        # recursive failure path when a poly pair rule is in scope.
        query: Type = CHAR
        if has_poly_pair and rng.random() < 0.5:
            query = pair(query, query)
        return query
    query = rng.choice(provided)
    if has_poly_pair:
        for _ in range(rng.randint(0, config.max_query_nesting)):
            query = pair(query, query)
    return query


def generate_corpus(
    seed: int, count: int, config: GenConfig = DEFAULT_CONFIG
) -> Iterator[FuzzCase]:
    """The first ``count`` cases of the run seeded with ``seed``."""
    for index in range(count):
        yield generate_case(seed, index, config)


# ---------------------------------------------------------------------------
# Recursive augmentation (the `corecursive` oracle's extended mix).
# ---------------------------------------------------------------------------

#: Salt mixed into the per-case RNG stream for recursive augmentation,
#: so the extra frame never perturbs the golden-pinned base corpus.
_CORECURSIVE_SALT = 0x5EED_C0DE


def augment_recursive(case: FuzzCase) -> FuzzCase:
    """The case extended with recursive rule shapes, deterministically.

    A pure function of ``(case.seed, case.index, case.frames)``: the
    base generator stream is untouched (the extra randomness is salted),
    so shrinking the *base* case and re-augmenting replays identically.
    One extra innermost frame is appended and the query is retargeted at
    it, cycling through three shapes:

    * a guarded self-cycle ``{q, [q]} => [q]`` queried at ``[q]`` -- the
      head occurs in its own context, so the fuel engine diverges while
      the corecursive engine closes a productive cycle;
    * a mutual ``mu``-style 2-cycle ``{MuRight} => MuLeft`` /
      ``{MuLeft} => MuRight`` queried at ``MuLeft``;
    * an unguarded self-loop ``{Unprod} => Unprod`` queried at
      ``Unprod`` -- *both* engines must report divergence (the
      guardedness check is what keeps the corecursive side honest).

    The augmented bindings are resolution-only (their exprs are
    placeholders): the `corecursive` oracle consumes ``case.env()`` and
    ``case.query``, never ``case.program()``, and artifacts always store
    the un-augmented base case.
    """
    from ..core.types import TCon, list_of

    rng = random.Random(
        ((case.seed & 0xFFFFFFFF) * 0x1_0000_0000 + (case.index & 0xFFFFFFFF))
        ^ _CORECURSIVE_SALT
    )
    q = case.query
    listy = list_of(q)
    self_cycle = rule(listy, [q, listy])
    extra: list[Binding] = [(crule(self_cycle, ask(listy)), self_cycle)]
    query: Type = listy
    roll = rng.random()
    if roll < 0.40:
        left, right = TCon("MuLeft"), TCon("MuRight")
        rho_l, rho_r = rule(left, [right]), rule(right, [left])
        extra.append((crule(rho_l, ask(left)), rho_l))
        extra.append((crule(rho_r, ask(right)), rho_r))
        query = left
    elif roll < 0.55:
        unprod = TCon("Unprod")
        rho_u = rule(unprod, [unprod])
        extra.append((crule(rho_u, ask(unprod)), rho_u))
        query = unprod
    return replace(case, frames=case.frames + (tuple(extra),), query=query)


# ---------------------------------------------------------------------------
# Alpha-renaming support (the metamorphic `alpha` oracle and its inverse).
# ---------------------------------------------------------------------------


def rename_type(tau: Type, mapping: dict[str, str]) -> Type:
    """Apply a *bijective* variable renaming to every ``TVar`` in ``tau``.

    Unlike substitution this renames bound occurrences and binders too:
    a bijection on names preserves alpha-classes, scoping and overlap
    structure, which is exactly the invariance the ``alpha`` oracle
    checks.  Names outside the mapping pass through unchanged.
    """
    from ..core.types import RuleType, TCon, TFun

    match tau:
        case TVar(name):
            return TVar(mapping.get(name, name))
        case TCon(name, args):
            if not args:
                return tau
            return TCon(name, tuple(rename_type(a, mapping) for a in args))
        case TFun(arg, res):
            return TFun(rename_type(arg, mapping), rename_type(res, mapping))
        case RuleType():
            return RuleType(
                tuple(mapping.get(v, v) for v in tau.tvars),
                tuple(rename_type(r, mapping) for r in tau.context),
                rename_type(tau.head, mapping),
            )
    raise TypeError(f"not a Type: {tau!r}")


def renaming_for_case(case: FuzzCase) -> dict[str, str]:
    """A deterministic bijection over every variable name in the case."""
    names: set[str] = set()
    for frame in case.frames:
        for _, rho in frame:
            names.update(_all_names(rho))
    names.update(_all_names(case.query))
    return {name: f"fz_{name}" for name in sorted(names)}


def _all_names(tau: Type) -> set[str]:
    from ..core.types import RuleType, subterms

    out: set[str] = set()
    for t in subterms(tau):
        if isinstance(t, TVar):
            out.add(t.name)
        elif isinstance(t, RuleType):
            out.update(t.tvars)
    return out


def rename_case(case: FuzzCase, mapping: dict[str, str]) -> FuzzCase:
    """The case with every type consistently renamed (payloads re-typed)."""
    frames = tuple(
        tuple(
            (_rename_expr(e, mapping), rename_type(rho, mapping))
            for e, rho in frame
        )
        for frame in case.frames
    )
    return replace(case, frames=frames, query=rename_type(case.query, mapping))


def _rename_expr(e: Expr, mapping: dict[str, str]) -> Expr:
    """Rename every type annotation inside ``e`` (binders included)."""
    from ..core.terms import (
        App,
        If,
        Lam,
        ListLit,
        PairE,
        Prim,
        Project,
        Query,
        Record,
        TyApp,
        Var,
    )

    match e:
        case IntLit() | BoolLit() | StrLit() | Var() | Prim():
            return e
        case Lam(var, var_type, body):
            return Lam(var, rename_type(var_type, mapping), _rename_expr(body, mapping))
        case App(fn, arg):
            return App(_rename_expr(fn, mapping), _rename_expr(arg, mapping))
        case Query(rho):
            return Query(rename_type(rho, mapping))
        case RuleAbs(rho, body):
            return RuleAbs(rename_type(rho, mapping), _rename_expr(body, mapping))
        case TyApp(expr, type_args):
            return TyApp(
                _rename_expr(expr, mapping),
                tuple(rename_type(t, mapping) for t in type_args),
            )
        case RuleApp(expr, args):
            return RuleApp(
                _rename_expr(expr, mapping),
                tuple(
                    (_rename_expr(a, mapping), rename_type(rho, mapping))
                    for a, rho in args
                ),
            )
        case If(cond, then, orelse):
            return If(
                _rename_expr(cond, mapping),
                _rename_expr(then, mapping),
                _rename_expr(orelse, mapping),
            )
        case PairE(first, second):
            return PairE(_rename_expr(first, mapping), _rename_expr(second, mapping))
        case ListLit(elems, elem_type):
            return ListLit(
                tuple(_rename_expr(el, mapping) for el in elems),
                None if elem_type is None else rename_type(elem_type, mapping),
            )
        case Record(iface, type_args, fields):
            return Record(
                iface,
                tuple(rename_type(t, mapping) for t in type_args),
                tuple((name, _rename_expr(f, mapping)) for name, f in fields),
            )
        case Project(expr, field_name):
            return Project(_rename_expr(expr, mapping), field_name)
    raise TypeError(f"not an Expr: {e!r}")
