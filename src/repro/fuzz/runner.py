"""Orchestration for `repro fuzz`: corpus runs, artifacts, replay.

A run walks the seeded corpus case by case, evaluates the selected
oracles on each, shrinks any disagreement and (optionally) writes a
replayable JSON artifact per disagreement.  All counters thread through
the active :class:`repro.obs.ResolutionStats`.

Artifacts are self-contained: the shrunk case, the original case, the
oracle name and the injected fault (if any), so
``repro fuzz --replay FILE`` reconstructs the exact disagreement with
no other state.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..obs import record_fuzz_case, record_fuzz_disagreement
from .gen import DEFAULT_CONFIG, FORMAT_VERSION, FuzzCase, GenConfig, generate_case
from .oracles import ORACLES, OracleContext, Verdict, inject_fault, oracle_names
from .shrink import shrink_case


@dataclass(frozen=True)
class Disagreement:
    """One counterexample: the found case, its minimization, the verdict."""

    oracle: str
    case: FuzzCase
    shrunk: FuzzCase
    verdict: Verdict  # verdict of the *shrunk* case
    shrink_steps: int
    artifact_path: str | None = None

    def as_dict(self) -> dict:
        return {
            "version": FORMAT_VERSION,
            "oracle": self.oracle,
            "fault": _active_fault(),
            "seed": self.case.seed,
            "index": self.case.index,
            "original": self.case.as_dict(),
            "case": self.shrunk.as_dict(),
            "verdict": self.verdict.as_dict(),
            "shrink_steps": self.shrink_steps,
        }


@dataclass
class FuzzReport:
    """Summary of one fuzz run (what the CLI prints)."""

    seed: int
    oracles: tuple[str, ...]
    cases_run: int = 0
    comparisons: int = 0
    agreements: int = 0
    both_failed: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def format(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} cases={self.cases_run} "
            f"oracles={','.join(self.oracles)}",
            f"fuzz: comparisons={self.comparisons} "
            f"agree={self.agreements} both_fail={self.both_failed} "
            f"disagree={len(self.disagreements)}"
            + (" (budget exhausted)" if self.budget_exhausted else ""),
        ]
        for d in self.disagreements:
            where = f" -> {d.artifact_path}" if d.artifact_path else ""
            lines.append(
                f"fuzz: DISAGREE oracle={d.oracle} case={d.case.index} "
                f"shrunk_to={d.shrunk.rule_count()} rules "
                f"({d.shrink_steps} steps){where}"
            )
        return "\n".join(lines)


def _active_fault() -> str | None:
    from . import oracles

    return oracles._FAULT


def resolve_oracle_selection(selection: list[str] | None) -> tuple[str, ...]:
    """Validate ``--oracle`` values; ``None``/empty means the full matrix."""
    if not selection:
        return oracle_names()
    unknown = [name for name in selection if name not in ORACLES]
    if unknown:
        known = ", ".join(oracle_names())
        raise ValueError(
            f"unknown oracle(s) {', '.join(unknown)} (known: {known})"
        )
    # Preserve matrix order, drop duplicates.
    return tuple(name for name in oracle_names() if name in selection)


def run_fuzz(
    seed: int,
    cases: int,
    *,
    oracles: list[str] | None = None,
    budget_s: float | None = None,
    artifact_dir: str | None = None,
    config: GenConfig = DEFAULT_CONFIG,
    shrink: bool = True,
) -> FuzzReport:
    """Run the corpus ``(seed, 0..cases)`` through the oracle matrix."""
    selected = resolve_oracle_selection(oracles)
    report = FuzzReport(seed=seed, oracles=selected)
    started = time.monotonic()
    with OracleContext() as ctx:
        for index in range(cases):
            if budget_s is not None and time.monotonic() - started > budget_s:
                report.budget_exhausted = True
                break
            case = generate_case(seed, index, config)
            record_fuzz_case()
            report.cases_run += 1
            for name in selected:
                verdict = ORACLES[name](case, ctx)
                report.comparisons += 1
                if verdict.classification == "agree":
                    report.agreements += 1
                elif verdict.classification == "both_fail":
                    report.both_failed += 1
                else:
                    record_fuzz_disagreement()
                    report.disagreements.append(
                        _minimize(case, name, verdict, ctx, artifact_dir, shrink)
                    )
    report.elapsed_s = time.monotonic() - started
    return report


def _minimize(
    case: FuzzCase,
    oracle: str,
    verdict: Verdict,
    ctx: OracleContext,
    artifact_dir: str | None,
    shrink: bool,
) -> Disagreement:
    if shrink:
        shrunk, steps = shrink_case(case, ORACLES[oracle], ctx)
        final = ORACLES[oracle](shrunk, ctx)
    else:
        shrunk, steps, final = case, 0, verdict
    disagreement = Disagreement(
        oracle=oracle,
        case=case,
        shrunk=shrunk,
        verdict=final,
        shrink_steps=steps,
    )
    if artifact_dir is not None:
        path = write_artifact(disagreement, artifact_dir)
        disagreement = Disagreement(
            oracle=oracle,
            case=case,
            shrunk=shrunk,
            verdict=final,
            shrink_steps=steps,
            artifact_path=path,
        )
    return disagreement


def write_artifact(disagreement: Disagreement, artifact_dir: str) -> str:
    os.makedirs(artifact_dir, exist_ok=True)
    name = (
        f"fuzz-seed{disagreement.case.seed}"
        f"-case{disagreement.case.index}"
        f"-{disagreement.oracle}.json"
    )
    path = os.path.join(artifact_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(disagreement.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying an artifact: did the disagreement reproduce?"""

    oracle: str
    verdict: Verdict
    expected: str
    reproduced: bool

    def format(self) -> str:
        status = "reproduced" if self.reproduced else "NOT reproduced"
        return (
            f"replay: oracle={self.oracle} "
            f"expected={self.expected} got={self.verdict.classification} "
            f"-- {status}\n"
            f"replay: left  {self.verdict.left.describe()}\n"
            f"replay: right {self.verdict.right.describe()}"
        )


def replay_artifact(payload: dict) -> ReplayResult:
    """Re-run the shrunk case of a saved artifact under its oracle.

    Restores the recorded fault injection (if the artifact was produced
    by a faulted run) so replay is deterministic end to end.
    """
    oracle = payload["oracle"]
    if oracle not in ORACLES:
        raise ValueError(f"artifact names unknown oracle {oracle!r}")
    case = FuzzCase.from_dict(payload["case"])
    expected = payload.get("verdict", {}).get("classification", "disagree")
    with inject_fault(payload.get("fault")), OracleContext() as ctx:
        verdict = ORACLES[oracle](case, ctx)
    return ReplayResult(
        oracle=oracle,
        verdict=verdict,
        expected=expected,
        reproduced=verdict.classification == expected,
    )


def load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
