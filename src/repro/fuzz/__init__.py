"""Generative fuzzing and differential-oracle harness (`repro fuzz`).

Seeded, fully deterministic: :mod:`.gen` builds cases from an explicit
``random.Random``; :mod:`.oracles` runs each case through pairs of
semantically equivalent engines plus metamorphic checks; :mod:`.shrink`
delta-debugs any disagreement to a minimal replayable artifact;
:mod:`.runner` orchestrates runs and replay.  See docs/TESTING.md.
"""

from .gen import (
    DEFAULT_CONFIG,
    FORMAT_VERSION,
    FuzzCase,
    GenConfig,
    case_rng,
    generate_case,
    generate_corpus,
    rename_case,
    rename_type,
    renaming_for_case,
)
from .oracles import (
    ORACLES,
    OracleContext,
    Outcome,
    Verdict,
    derivation_signature,
    inject_fault,
    oracle_names,
    set_fault,
)
from .runner import (
    Disagreement,
    FuzzReport,
    ReplayResult,
    load_artifact,
    replay_artifact,
    resolve_oracle_selection,
    run_fuzz,
    write_artifact,
)
from .shrink import shrink_case

__all__ = [
    "DEFAULT_CONFIG",
    "FORMAT_VERSION",
    "FuzzCase",
    "GenConfig",
    "ORACLES",
    "OracleContext",
    "Outcome",
    "Verdict",
    "Disagreement",
    "FuzzReport",
    "ReplayResult",
    "case_rng",
    "derivation_signature",
    "generate_case",
    "generate_corpus",
    "inject_fault",
    "load_artifact",
    "oracle_names",
    "rename_case",
    "rename_type",
    "renaming_for_case",
    "replay_artifact",
    "resolve_oracle_selection",
    "run_fuzz",
    "set_fault",
    "shrink_case",
    "write_artifact",
]
