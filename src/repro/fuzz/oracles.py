"""Differential and metamorphic oracles over generated cases.

Each oracle runs one :class:`~repro.fuzz.gen.FuzzCase` through a *pair*
of semantically equivalent engines and classifies the outcome:

``agree``
    both sides succeeded with equal (alpha-invariant) results;
``both_fail``
    both sides failed with the identical error class;
``disagree``
    anything else -- the case is a counterexample worth shrinking.

The engine pairs mirror every redundancy the repo has accumulated:

=============  ==========================================================
``index``      head-constructor indexed lookup vs the naive frame scan
``compiled``   compiled discrimination-trie matchers
               (:mod:`repro.core.compile_env`) vs interpreted indexed
               lookup, run under *both* overlap policies so the compiled
               path's failure behaviour (overlap rejection, specificity
               selection, ambiguity) is compared too
``cache``      memoized resolution (two resolves through one cache)
               vs cache-disabled resolution
``logic``      the deterministic Resolver vs the logic engine's
               backchaining (Theorem 1: resolution implies entailment;
               the converse is *not* claimed, so a Resolver failure
               with a successful entailment still counts as agreement)
``semantics``  SMALLSTEP vs OPERATIONAL evaluation of the case program
``service``    the in-process pipeline vs the concurrent resolution
               service (sessions, worker pool, protocol encode/decode)
``sharded``    the single-process service vs the sharded service (a
               2-worker :class:`~repro.service.shards.ShardSupervisor`,
               real subprocesses, compact wire frames): full response
               transcripts of identical session push/resolve/pop
               scripts must agree byte for byte, error codes and
               messages included
``alpha``      metamorphic: resolution is invariant under a bijective
               renaming of every type variable in the case
``permute``    metamorphic: under the ``no_overlap`` policy, permuting
               entries *within* a frame cannot change the outcome
``lint``       metamorphic: ``repro lint`` findings (JSON) are stable
               under re-parse of the pretty-printed rule environment
``store``      cold resolution vs resolution replayed through the
               persistent derivation store (:mod:`repro.store`): write
               through to disk, reopen, warm a fresh cache and resolve
               again; then tamper every record on disk *without*
               updating its frame CRC and reopen once more -- the
               quarantine path must fire while resolution still agrees
               (a quarantined record is recomputed, never trusted)
``corecursive`` the fuel-bounded syntactic engine vs the corecursive
               engine (cycle detection + mu-bound recursive evidence):
               on queries both answer the derivation signatures must
               agree; on a generator mix extended with recursive rule
               shapes (:func:`~repro.fuzz.gen.augment_recursive`) the
               corecursive engine must *refine* every fuel divergence
               into either a guarded recursive proof or a definite
               failure, and every returned proof must independently
               pass :func:`~repro.core.resolution.derivation_cycles_guarded`;
               a fixed unguarded canary (``{C} => C |- C``) must be
               rejected by both engines.  The fault arm disables the
               engine's guardedness check, so the canary (and every
               generated unguarded loop) yields evidence the oracle's
               independent validation refuses -- proving the check is
               load-bearing
``subtyping``  three-way agreement around the modus-ponens
               intersection-subtyping backend (:mod:`repro.subtyping`):
               on queries all sides handle, the subtyping verdict must
               equal the logic engine's entailment, a Resolver success
               must be subtyping-provable (resolution implies
               subtyping), and every ``HOLDS`` derivation must pass
               :func:`repro.subtyping.check_entailment` independently.
               Carve-outs (docs/TESTING.md): budget-dependent outcomes
               on any side, and conjuncts with premise-only quantified
               variables (the procedure reports ``EXHAUSTED`` rather
               than guessing).  The fault arm corrupts the
               *translation* -- :func:`repro.subtyping.set_conjunct_drop`
               silently loses one conjunct -- so every query whose
               proof needs the lost implication becomes a one-sided
               ``FAILS``: an incomplete-translation bug of exactly the
               class this oracle guards against
=============  ==========================================================

Success results are compared through :func:`derivation_signature`, an
alpha-invariant structural summary of the derivation tree (canonical
type keys, matched rules, premise shapes), so incidental differences in
fresh-variable naming can never masquerade as disagreements.

Fault injection (test-only): :func:`inject_fault` corrupts one side of
the named oracle so the shrinker, artifact writer and ``--replay`` path
can be exercised end to end without a real bug in the engines.  Most
oracles flip right-hand successes into a sentinel failure
(:func:`_faulted`); the ``compiled`` oracle instead corrupts the *trie
itself* (every scan drops its last candidate -- a missing-edge,
incomplete-index bug), and the ``sharded`` oracle corrupts the *wire
frames* the supervisor sends its workers (the opcode field is flipped,
so every frame is malformed), so each injected failure exercises the
exact class of bug its oracle exists to catch -- for ``sharded``, both
the oracle and the worker's malformed-frame error path fire at once,
and the ``store`` oracle disables CRC verification while replaying its
tampered log, so the flipped outcomes reach resolution: the exact
disagreement a missing (or broken) checksum would cause in production.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..core.cache import ResolutionCache
from ..core.env import ImplicitEnv, OverlapPolicy, indexing
from ..core.pretty import pretty_type
from ..core.resolution import (
    ByAssumption,
    ByCorecursion,
    ByResolution,
    Derivation,
    ResolutionStrategy,
    Resolver,
    corec_guard,
    derivation_cycles_guarded,
)
from ..core.types import Type, canonical_key
from ..errors import ImplicitCalculusError
from ..pipeline import Semantics, run_core
from .gen import (
    FuzzCase,
    augment_recursive,
    rename_case,
    rename_type,
    renaming_for_case,
)

# ---------------------------------------------------------------------------
# Outcomes and verdicts.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    """One engine's answer: ``ok`` with a comparable detail, or ``fail``
    with the error class name."""

    status: str  # "ok" | "fail"
    detail: Any

    def describe(self) -> str:
        return f"{self.status}: {self.detail!r}"


@dataclass(frozen=True)
class Verdict:
    """The classified comparison of two outcomes for one oracle."""

    oracle: str
    classification: str  # "agree" | "disagree" | "both_fail"
    left: Outcome
    right: Outcome
    note: str = ""

    @property
    def disagrees(self) -> bool:
        return self.classification == "disagree"

    def as_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "classification": self.classification,
            "left": self.left.describe(),
            "right": self.right.describe(),
            "note": self.note,
        }


def classify(oracle: str, left: Outcome, right: Outcome, note: str = "") -> Verdict:
    if left == right:
        kind = "both_fail" if left.status == "fail" else "agree"
    else:
        kind = "disagree"
    return Verdict(oracle, kind, left, right, note)


# ---------------------------------------------------------------------------
# Test-only fault injection.
# ---------------------------------------------------------------------------

_FAULT: str | None = None

_INJECTED = Outcome("fail", "InjectedFault")


def set_fault(name: str | None) -> str | None:
    """Corrupt one side of the named oracle; returns the previous fault."""
    global _FAULT
    previous = _FAULT
    _FAULT = name
    return previous


@contextmanager
def inject_fault(name: str | None) -> Iterator[None]:
    previous = set_fault(name)
    try:
        yield
    finally:
        set_fault(previous)


def _faulted(oracle: str, outcome: Outcome) -> Outcome:
    """The right-hand outcome, corrupted when a fault targets ``oracle``.

    The corruption flips successes into a sentinel failure, so every
    case the engines *can* resolve becomes a disagreement -- which is
    exactly what a real one-sided bug would look like to the harness.
    """
    if _FAULT == oracle and outcome.status == "ok":
        return _INJECTED
    return outcome


# ---------------------------------------------------------------------------
# Alpha-invariant derivation signatures.
# ---------------------------------------------------------------------------


def derivation_signature(
    derivation: Derivation, unmap: dict[str, str] | None = None
) -> tuple:
    """A structural, alpha-invariant summary of a derivation tree.

    ``unmap`` (used by the ``alpha`` oracle) renames the variables of a
    renamed case back before keying, so the signature of the renamed
    run is directly comparable with the original's.
    """

    def key(tau: Type) -> tuple:
        if unmap:
            tau = rename_type(tau, unmap)
        return canonical_key(tau)

    premises = []
    for premise in derivation.premises:
        if isinstance(premise, ByAssumption):
            premises.append(("assume", premise.token.index))
        elif isinstance(premise, ByCorecursion):
            premises.append(("corec", key(premise.token.rho)))
        else:
            assert isinstance(premise, ByResolution)
            premises.append(
                ("resolve", derivation_signature(premise.derivation, unmap))
            )
    return (key(derivation.query), key(derivation.lookup.entry.rho), tuple(premises))


def resolve_outcome(
    case: FuzzCase,
    *,
    env=None,
    query: Type | None = None,
    use_index: bool | None = None,
    use_compiled: bool | None = None,
    cache: ResolutionCache | None = None,
    unmap: dict[str, str] | None = None,
    policy: OverlapPolicy = OverlapPolicy.REJECT,
    strategy: ResolutionStrategy = ResolutionStrategy.SYNTACTIC,
) -> Outcome:
    """Run one resolution through a configured Resolver; normalize."""
    resolver = Resolver(
        policy=policy,
        strategy=strategy,
        use_index=use_index,
        use_compiled=use_compiled,
        cache=cache,
    )
    try:
        derivation = resolver.resolve(
            case.env() if env is None else env,
            case.query if query is None else query,
        )
    except ImplicitCalculusError as exc:
        return Outcome("fail", type(exc).__name__)
    return Outcome("ok", derivation_signature(derivation, unmap))


# ---------------------------------------------------------------------------
# The shared per-run context (owns the lazily started in-process service).
# ---------------------------------------------------------------------------


class OracleContext:
    """Shared machinery for one fuzz run (service, session naming)."""

    def __init__(self):
        self._service = None
        self._sharded = None
        self._session_counter = 0

    def service(self):
        if self._service is None:
            from ..service.server import ResolutionService

            self._service = ResolutionService(workers=2, queue_depth=32)
        return self._service

    def sharded(self):
        if self._sharded is None:
            from ..service.shards import ShardSupervisor

            self._sharded = ShardSupervisor(
                workers=2, threads=2, queue_depth=32
            )
        return self._sharded

    def next_session_name(self) -> str:
        self._session_counter += 1
        return f"fuzz-{self._session_counter}"

    def close(self) -> None:
        if self._service is not None:
            self._service.shutdown()
            self._service = None
        if self._sharded is not None:
            self._sharded.shutdown()
            self._sharded = None

    def __enter__(self) -> "OracleContext":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Engine-pair oracles.
# ---------------------------------------------------------------------------


def oracle_index(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Indexed vs naive rule lookup (PR 2's equivalence claim)."""
    left = resolve_outcome(case, use_index=True)
    right = _faulted("index", resolve_outcome(case, use_index=False))
    return classify("index", left, right)


def _policy_pair(case: FuzzCase, **kwargs) -> Outcome:
    """One composite outcome covering *both* overlap policies.

    The compiled matcher must reproduce not just successes but the
    interpreted path's failure behaviour -- overlap rejection under
    REJECT, specificity selection and ambiguity under MOST_SPECIFIC --
    so each side of the ``compiled`` oracle is the pair of per-policy
    outcomes.  The composite counts as "ok" if either policy resolved
    (mirroring how single-policy oracles report ``both_fail`` only when
    nothing resolves), with the full per-policy detail kept so any
    divergence in *which* policy failed, or how, still disagrees.
    """
    outcomes = []
    for policy in (OverlapPolicy.REJECT, OverlapPolicy.MOST_SPECIFIC):
        out = resolve_outcome(case, policy=policy, **kwargs)
        outcomes.append((policy.name, out.status, out.detail))
    status = "fail" if all(s == "fail" for _, s, _ in outcomes) else "ok"
    return Outcome(status, tuple(outcomes))


def oracle_compiled(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Compiled trie matchers vs interpreted indexed lookup (PR 9).

    Unlike the other oracles, the fault arm does not flip outcomes after
    the fact: it corrupts the discrimination tries themselves (every
    scan silently drops its last candidate), so the injected bug is of
    exactly the class -- an incomplete index -- this oracle guards
    against.
    """
    from ..core.compile_env import corrupt_tries

    if _FAULT == "compiled":
        with corrupt_tries():
            left = _policy_pair(case, use_compiled=True)
    else:
        left = _policy_pair(case, use_compiled=True)
    right = _policy_pair(case, use_index=True, use_compiled=False)
    return classify("compiled", left, right, note="both overlap policies")


def oracle_cache(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Cached vs uncached resolution (PR 1's transparency claim).

    The cached side resolves *twice* through one warm cache; the second
    (hit-serving) outcome is the one compared, and the two cached
    outcomes must agree with each other as well.
    """
    cache = ResolutionCache()
    first = resolve_outcome(case, cache=cache)
    second = resolve_outcome(case, cache=cache)
    if first != second:
        return Verdict(
            "cache", "disagree", first, second, note="cold vs warm cache differ"
        )
    right = _faulted("cache", resolve_outcome(case, cache=None))
    return classify("cache", second, right)


def oracle_logic(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Resolver vs logic-engine backchaining (paper Theorem 1).

    The theorem is an implication: deterministic resolution success must
    entail ``Delta-dagger |= rho-dagger``.  The converse direction is
    explicitly not claimed (the logic engine proves more, e.g. through
    overlapped or shadowed rules), so a Resolver failure never counts
    against the entailment side -- unless *both* deny the query, which
    is reported as ``both_fail`` for corpus statistics.
    """
    from ..logic.encode import env_entails

    left = resolve_outcome(case)
    entailed = env_entails(case.env(), case.query, cached=False)
    right = _faulted("logic", Outcome("ok", ("entails", entailed)))
    if right.status == "fail":
        return Verdict("logic", "disagree", left, right)
    if left.status == "ok":
        kind = "agree" if right.detail == ("entails", True) else "disagree"
        return Verdict("logic", kind, left, right)
    if right.detail == ("entails", False):
        return Verdict("logic", "both_fail", left, right)
    return Verdict(
        "logic", "agree", left, right, note="entailment over-approximates"
    )


def _run_outcome(case: FuzzCase, semantics: Semantics) -> Outcome:
    try:
        run = run_core(
            case.program(),
            resolver=Resolver(cache=ResolutionCache()),
            semantics=semantics,
        )
    except ImplicitCalculusError as exc:
        return Outcome("fail", type(exc).__name__)
    return Outcome("ok", (pretty_type(run.type), repr(run.value)))


def oracle_semantics(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """SMALLSTEP vs OPERATIONAL execution of the elaborated program."""
    left = _run_outcome(case, Semantics.SMALLSTEP)
    right = _faulted("semantics", _run_outcome(case, Semantics.OPERATIONAL))
    return classify("semantics", left, right)


def oracle_service(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """In-process pipeline vs the concurrent resolution service.

    The service side goes through the real request path: session
    creation, per-frame ``session/push_rules`` (re-parsing the
    pretty-printed rule types), worker-pool dispatch and protocol
    encoding.  Compared on the service's own result shape: the matched
    rule's printed type and the derivation size.
    """
    service = ctx.service()
    name = ctx.next_session_name()
    service_outcome: Outcome | None = None
    response = service.handle_sync(
        {"id": 1, "op": "session/new", "params": {"name": name}}
    )
    if not response.get("ok"):
        service_outcome = Outcome("fail", response["error"]["code"])
    if service_outcome is None:
        for frame in case.frames:
            response = service.handle_sync(
                {
                    "id": 2,
                    "op": "session/push_rules",
                    "params": {
                        "session": name,
                        "rules": [pretty_type(rho) for _, rho in frame],
                    },
                }
            )
            if not response.get("ok"):
                service_outcome = Outcome("fail", response["error"]["code"])
                break
    if service_outcome is None:
        response = service.handle_sync(
            {
                "id": 3,
                "op": "resolve",
                "params": {"session": name, "type": pretty_type(case.query)},
            }
        )
        if response.get("ok"):
            result = response["result"]
            service_outcome = Outcome("ok", (result["matched"], result["size"]))
        else:
            error = response["error"]
            detail = (error.get("details") or {}).get("error", error["code"])
            service_outcome = Outcome("fail", detail)
    service.handle_sync(
        {"id": 4, "op": "session/close", "params": {"session": name}}
    )
    # Pipeline side, normalized to the service's result shape.
    resolver = Resolver(cache=None)
    try:
        derivation = resolver.resolve(case.env(), case.query)
        left = Outcome(
            "ok", (str(derivation.lookup.entry.rho), derivation.size())
        )
    except ImplicitCalculusError as exc:
        left = Outcome("fail", type(exc).__name__)
    return classify("service", left, _faulted("service", service_outcome))


def _drive_session_script(service, name: str, case: FuzzCase) -> list[dict]:
    """Run one fixed session script; return the full response transcript.

    The script exercises the whole session lifecycle: create, one
    ``push_rules`` per case frame, resolve (with the wire-encoded
    derivation signature), then -- when there is a frame to pop -- pop
    and resolve again against the shallower environment, and close.
    Request ids are fixed, so two transcripts from equivalent services
    are comparable byte for byte.
    """
    transcript: list[dict] = []

    def call(request_id: int, op: str, params: dict) -> dict:
        response = service.handle_sync(
            {"id": request_id, "op": op, "params": params}
        )
        transcript.append(response)
        return response

    call(1, "session/new", {"name": name})
    for frame in case.frames:
        call(
            2,
            "session/push_rules",
            {"session": name, "rules": [pretty_type(rho) for _, rho in frame]},
        )
    resolve_params = {
        "session": name,
        "type": pretty_type(case.query),
        "signature": True,
    }
    call(3, "resolve", resolve_params)
    if case.frames:
        call(4, "session/pop", {"session": name})
        call(5, "resolve", dict(resolve_params))
    call(6, "session/close", {"session": name})
    return transcript


def _transcript_outcome(transcript: list[dict]) -> Outcome:
    import json

    resolved = next((r for r in transcript if r.get("id") == 3), None)
    status = "ok" if resolved is not None and resolved.get("ok") else "fail"
    return Outcome(status, json.dumps(transcript, sort_keys=True))


def oracle_sharded(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Single-process service vs the sharded service (real subprocesses).

    Both sides run the identical session script
    (:func:`_drive_session_script`) and the *entire* transcripts must
    match byte for byte -- success results (including the wire-encoded
    derivation signatures), error codes, error messages, and depths
    alike, so identical failures classify as ``both_fail``.

    The fault arm corrupts every wire frame the supervisor sends (the
    opcode field is replaced), proving that the worker's malformed-frame
    ``parse_error`` path and this oracle both fire.
    """
    from ..service import wire

    name = ctx.next_session_name()
    left = _transcript_outcome(
        _drive_session_script(ctx.service(), name, case)
    )
    if _FAULT == "sharded":
        previous = wire.set_wire_corruption(True)
        try:
            right_transcript = _drive_session_script(ctx.sharded(), name, case)
        finally:
            wire.set_wire_corruption(previous)
    else:
        right_transcript = _drive_session_script(ctx.sharded(), name, case)
    right = _transcript_outcome(right_transcript)
    return classify(
        "sharded", left, right, note="single-process vs 2-shard transcripts"
    )


# ---------------------------------------------------------------------------
# Metamorphic oracles.
# ---------------------------------------------------------------------------


def oracle_alpha(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Resolution is invariant under bijective alpha-renaming."""
    mapping = renaming_for_case(case)
    unmap = {fresh: old for old, fresh in mapping.items()}
    left = resolve_outcome(case)
    renamed = rename_case(case, mapping)
    right = _faulted("alpha", resolve_outcome(renamed, unmap=unmap))
    return classify("alpha", left, right, note="alpha-renamed replay")


def oracle_permute(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Within-frame entry order is irrelevant under ``no_overlap``.

    Lookup collects *all* matches of a frame before deciding, so a
    permutation inside a frame can change neither the unique winner nor
    the overlap failure.  (Frame *stack* order is load-bearing -- it is
    the paper's lexical scoping -- and is left untouched.)
    """
    rng = random.Random(case.seed * 7919 + case.index + 1)
    frames = tuple(
        tuple(rng.sample(frame, len(frame))) for frame in case.frames
    )
    permuted = FuzzCase(
        seed=case.seed,
        index=case.index,
        frames=frames,
        query=case.query,
        overlapping=case.overlapping,
    )
    left = resolve_outcome(case)
    right = _faulted("permute", resolve_outcome(permuted))
    return classify("permute", left, right, note="within-frame permutation")


def oracle_lint(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """``repro lint`` JSON is stable under re-parse of printed rules."""
    from ..core.parser import parse_core_type
    from ..diagnostics import lint_env, render_json

    left_json = render_json(lint_env(case.env()), "<fuzz>")
    reparsed = FuzzCase(
        seed=case.seed,
        index=case.index,
        frames=tuple(
            tuple((e, parse_core_type(pretty_type(rho))) for e, rho in frame)
            for frame in case.frames
        ),
        query=case.query,
        overlapping=case.overlapping,
    )
    right_json = render_json(lint_env(reparsed.env()), "<fuzz>")
    left = Outcome("ok", left_json)
    right = _faulted("lint", Outcome("ok", right_json))
    return classify("lint", left, right, note="lint JSON re-parse stability")


def _tamper_store_log(path: str) -> int:
    """Flip every record's outcome on disk, leaving the CRCs stale.

    This is on-disk corruption of exactly the class the frame checksum
    exists to catch: each payload is rewritten to a *decodable* record
    whose outcome contradicts the original (successes become
    ``NoMatchingRuleError`` failures, failures swap error class), while
    the trailing CRC stays a checksum of nothing.  Under normal
    verification every tampered frame quarantines at reopen; under CRC
    bypass the flipped outcomes decode cleanly and reach resolution.
    Returns the number of records tampered.
    """
    import json
    import zlib

    from ..store.log import MARKER, RecordLog, _LEN

    log = RecordLog(path, kind="derivations", read_only=True)
    try:
        spans = log.record_spans()
        payloads = [log.read_payload(off, plen) for off, plen in spans]
        header_end = spans[0][0] if spans else log.size_bytes()
    finally:
        log.close()
    with open(path, "rb") as fh:
        head = fh.read(header_end)
    frames = []
    tampered = 0
    for payload in payloads:
        if payload is None:
            continue
        doc = json.loads(payload.decode("utf-8"))
        if doc.get("k") == "D":
            doc.pop("d", None)
            doc["k"] = "F"
            doc["err"] = ["NoMatchingRuleError", "store fault arm tampered this"]
        else:
            doc["err"] = ["OverlappingRulesError", "store fault arm tampered this"]
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
        stale_crc = (zlib.crc32(blob) ^ 0xDEADBEEF) & 0xFFFFFFFF
        frames.append(
            bytes([MARKER]) + _LEN.pack(len(blob)) + blob + _LEN.pack(stale_crc)
        )
        tampered += 1
    with open(path, "wb") as fh:
        fh.write(head + b"".join(frames))
    return tampered


def oracle_store(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Cold resolution vs the persistent derivation store (module docs).

    Three sub-checks per case, each against the same cold baseline:

    1. *write-through transparency*: resolving through a
       :class:`~repro.store.PersistentResolutionCache` agrees;
    2. *disk-warmed replay*: after close + reopen + ``warm``, the
       decoded derivation reproduces the cold signature;
    3. *quarantine*: after :func:`_tamper_store_log` (stale CRCs), the
       reopened store must count corrupt records (when any existed)
       and resolution must *still* agree, because quarantined records
       are recomputed, never trusted.

    The fault arm runs the tampered replay with CRC verification
    bypassed instead, so every flipped outcome reaches resolution.
    """
    import os
    import shutil
    import tempfile

    from ..store import DerivationStore, PersistentResolutionCache, set_crc_bypass
    from ..store.store import LOG_NAME

    env = case.env()
    left = resolve_outcome(case, env=env)
    tmp = tempfile.mkdtemp(prefix="repro-fuzz-store-")
    try:
        log_path = os.path.join(tmp, LOG_NAME)
        store = DerivationStore(tmp)
        try:
            written = resolve_outcome(
                case, env=env, cache=PersistentResolutionCache(store)
            )
        finally:
            store.close()
        if written != left:
            return classify("store", left, written, note="write-through resolve")

        if _FAULT == "store":
            _tamper_store_log(log_path)
            previous = set_crc_bypass(True)
            try:
                store = DerivationStore(tmp)
                try:
                    warmed = PersistentResolutionCache(store)
                    warmed.warm(env)
                    right = resolve_outcome(case, env=env, cache=warmed)
                finally:
                    store.close()
            finally:
                set_crc_bypass(previous)
            return classify("store", left, right, note="tampered log, CRC bypassed")

        store = DerivationStore(tmp)
        try:
            warmed = PersistentResolutionCache(store)
            warmed.warm(env)
            right = resolve_outcome(case, env=env, cache=warmed)
        finally:
            store.close()
        if right != left:
            return classify("store", left, right, note="disk-warmed replay")

        tampered = _tamper_store_log(log_path)
        store = DerivationStore(tmp)
        try:
            if tampered and store.stats.store_corrupt_records == 0:
                return Verdict(
                    "store",
                    "disagree",
                    left,
                    Outcome("fail", "QuarantineDidNotFire"),
                    note="stale-CRC records were served, not quarantined",
                )
            warmed = PersistentResolutionCache(store)
            warmed.warm(env)
            right = resolve_outcome(case, env=env, cache=warmed)
        finally:
            store.close()
        return classify("store", left, right, note="post-quarantine recompute")
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _corec_outcome(env, query: Type) -> Outcome:
    """The corecursive engine's answer, independently guard-validated.

    A returned derivation whose cycles do not pass
    :func:`derivation_cycles_guarded` is reported as its own failure
    class: this re-validation is *outside* the engine, so disabling the
    engine's internal check (the fault arm) cannot go unnoticed.
    """
    resolver = Resolver(strategy=ResolutionStrategy.CORECURSIVE)
    try:
        derivation = resolver.resolve(env, query)
    except ImplicitCalculusError as exc:
        return Outcome("fail", type(exc).__name__)
    if not derivation_cycles_guarded(derivation):
        return Outcome("fail", "UnguardedCycleEvidence")
    return Outcome("ok", derivation_signature(derivation))


def _fuel_vs_corec(env, query: Type, note: str) -> Verdict:
    """Compare the fuel-bounded engine against the corecursive engine.

    The comparison is *asymmetric* in exactly one direction, mirroring
    the ``logic`` oracle's treatment of Theorem 1: a fuel divergence is
    an "I gave up", which the corecursive engine is allowed -- indeed
    expected -- to refine into either a guarded recursive proof or a
    definite failure.  Everything else must match exactly.
    """
    left = resolve_outcome(
        FuzzCase(seed=0, index=0, frames=(), query=query), env=env, query=query
    )
    right = _faulted("corecursive", _corec_outcome(env, query))
    if right.detail == "UnguardedCycleEvidence":
        # Never a benign refinement: the engine handed back a proof its
        # own soundness condition forbids.
        return Verdict("corecursive", "disagree", left, right, note=note)
    if left == Outcome("fail", "ResolutionDivergenceError") and right != _INJECTED:
        if right.status == "ok":
            return Verdict(
                "corecursive",
                "agree",
                left,
                right,
                note=f"{note}: cycle closed where fuel diverges",
            )
        return Verdict(
            "corecursive",
            "both_fail",
            left,
            right,
            note=f"{note}: divergence refined to a definite failure",
        )
    return classify("corecursive", left, right, note=note)


def oracle_corecursive(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Fuel-bounded vs corecursive resolution (module docs).

    Three sub-checks per case, first disagreement wins:

    1. the plain case -- on queries both engines answer, signatures
       must agree (the corecursive engine is a conservative extension);
    2. the recursively augmented case
       (:func:`~repro.fuzz.gen.augment_recursive`) -- the corecursive
       engine must tame the recursive instance workload;
    3. a fixed unguarded canary ``{C} => C |- C`` -- both engines must
       reject it, whatever the generated case looks like.

    The fault arm disables the engine's guardedness check for all three,
    so the canary's unguarded loop closes into evidence that the
    oracle's independent validation (:func:`_corec_outcome`) refuses --
    every case disagrees, proving the check is load-bearing.
    """
    if _FAULT == "corecursive":
        with corec_guard(False):
            return _oracle_corecursive_checks(case)
    return _oracle_corecursive_checks(case)


def _oracle_corecursive_checks(case: FuzzCase) -> Verdict:
    from ..core.types import TCon, rule as mk_rule

    env = case.env()
    plain = _fuel_vs_corec(env, case.query, "plain case")
    if plain.disagrees:
        return plain
    augmented = augment_recursive(case)
    recursive = _fuel_vs_corec(
        augmented.env(), augmented.query, "recursive augmentation"
    )
    if recursive.disagrees:
        return recursive
    canary_head = TCon("CorecCanary")
    canary_env = ImplicitEnv.empty().push([mk_rule(canary_head, [canary_head])])
    canary = _fuel_vs_corec(canary_env, canary_head, "unguarded canary")
    if canary.disagrees:
        return canary
    return recursive


def oracle_subtyping(case: FuzzCase, ctx: OracleContext) -> Verdict:
    """Three-way agreement around the intersection-subtyping backend.

    The sides: the deterministic ``Resolver`` (left), the modus-ponens
    subtyping decision (:func:`repro.subtyping.decide`) and the logic
    engine's entailment (both folded into the right outcome).  On the
    comparable fragment:

    1. every ``HOLDS`` derivation must survive the independent checker
       (:func:`repro.subtyping.check_entailment`) -- evidence the
       search produced but cannot justify is its own failure class;
    2. the subtyping verdict must equal entailment (both decide the
       semantic relation over the same translation);
    3. a Resolver success must be subtyping-provable (resolution
       implies subtyping -- the paper's direction); the converse is
       *not* claimed: an intersection forgets nearness and overlap
       policies, so subtyping proving more is agreement, like the
       ``logic`` oracle's over-approximation.

    Carve-outs (documented in docs/TESTING.md): an ``EXHAUSTED``
    subtyping verdict (step budget, or a premise-only quantified
    variable) and budget-dependent Resolver outcomes (fuel divergence,
    deadlines) are outside the fragment and classify as agreement with
    an explanatory note.

    The fault arm corrupts the translation itself -- one conjunct is
    silently dropped -- rather than flipping outcomes after the fact.
    """
    from ..logic.encode import env_entails
    from ..subtyping import (
        SubtypingVerdict,
        check_entailment,
        conjunct_drop,
        decide,
    )

    env = case.env()
    left = resolve_outcome(case, env=env)
    if _FAULT == "subtyping":
        with conjunct_drop(True):
            result = decide(env, case.query)
    else:
        result = decide(env, case.query)
    if result.verdict is SubtypingVerdict.HOLDS and not check_entailment(
        env, case.query, result.derivation
    ):
        return Verdict(
            "subtyping",
            "disagree",
            left,
            Outcome("fail", "InvalidSubtypingDerivation"),
            note="derivation failed independent re-checking",
        )
    entailed = env_entails(env, case.query, cached=False)
    right = Outcome(
        "ok", ("subtyping", result.verdict.value, "entails", entailed)
    )
    if result.verdict is SubtypingVerdict.EXHAUSTED:
        return Verdict(
            "subtyping", "agree", left, right, note=f"carve-out: {result.reason}"
        )
    holds = result.verdict is SubtypingVerdict.HOLDS
    if holds != entailed:
        return Verdict(
            "subtyping",
            "disagree",
            left,
            right,
            note="subtyping vs entailment verdicts differ",
        )
    if left.status == "ok":
        if holds:
            return Verdict("subtyping", "agree", left, right)
        return Verdict(
            "subtyping",
            "disagree",
            left,
            right,
            note="resolution succeeded but subtyping denies it",
        )
    if left.detail in ("ResolutionDivergenceError", "DeadlineExceededError"):
        return Verdict(
            "subtyping",
            "agree",
            left,
            right,
            note="carve-out: budget-dependent Resolver outcome",
        )
    if holds:
        return Verdict(
            "subtyping",
            "agree",
            left,
            right,
            note="subtyping over-approximates deterministic resolution",
        )
    return Verdict("subtyping", "both_fail", left, right)


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

OracleFn = Callable[[FuzzCase, OracleContext], Verdict]

#: The oracle matrix, in the order `repro fuzz` runs them.
ORACLES: dict[str, OracleFn] = {
    "index": oracle_index,
    "compiled": oracle_compiled,
    "cache": oracle_cache,
    "logic": oracle_logic,
    "semantics": oracle_semantics,
    "service": oracle_service,
    "sharded": oracle_sharded,
    "alpha": oracle_alpha,
    "permute": oracle_permute,
    "lint": oracle_lint,
    "store": oracle_store,
    "corecursive": oracle_corecursive,
    "subtyping": oracle_subtyping,
}


def oracle_names() -> tuple[str, ...]:
    return tuple(ORACLES)
