"""Greedy delta-debugging shrinker for disagreeing fuzz cases.

Given a case on which an oracle disagrees, repeatedly try structurally
smaller variants -- drop a whole frame, drop one rule, strip a rule to
its head, drop one context premise, replace the query by a subterm or a
base type -- and keep any variant on which the oracle *still*
disagrees.  Iterate to a fixpoint.  Candidates are enumerated in a
fixed order (largest reduction first) and the first still-disagreeing
candidate is taken each round, so shrinking is fully deterministic: the
same disagreement always minimizes to the same artifact.

Shrunk variants need not stay well-typed as programs: an ill-typed
variant fails *identically* on both sides of every oracle, classifies
as ``both_fail`` and is simply never kept, which is what makes one
shrinker sound for the resolution, semantic and metamorphic oracles
alike.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from ..core.types import INT, RuleType, TCon, Type, rule
from ..obs import record_fuzz_shrink
from .gen import FuzzCase
from .oracles import OracleContext, Verdict

OracleFn = Callable[[FuzzCase, OracleContext], Verdict]

#: Hard cap on oracle evaluations per shrink (cases are tiny; this is a
#: backstop against a pathological candidate space, not a tuning knob).
MAX_EVALUATIONS = 2000


def shrink_case(
    case: FuzzCase, oracle: OracleFn, ctx: OracleContext
) -> tuple[FuzzCase, int]:
    """Minimize ``case`` while ``oracle`` still disagrees.

    Returns the fixpoint case and the number of accepted reduction
    steps (recorded on the active :class:`ResolutionStats`, if any).
    """
    current = case
    steps = 0
    evaluations = 0
    progress = True
    while progress and evaluations < MAX_EVALUATIONS:
        progress = False
        for candidate in _candidates(current):
            evaluations += 1
            if oracle(candidate, ctx).disagrees:
                current = candidate
                steps += 1
                progress = True
                break
            if evaluations >= MAX_EVALUATIONS:
                break
    record_fuzz_shrink(steps)
    return current, steps


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Strictly smaller variants of ``case``, biggest reductions first."""
    # 1. Drop a whole frame (keep at least one).
    if len(case.frames) > 1:
        for i in range(len(case.frames)):
            frames = case.frames[:i] + case.frames[i + 1 :]
            yield replace(case, frames=frames)
    # 2. Drop one rule from a multi-rule frame.
    for i, frame in enumerate(case.frames):
        if len(frame) <= 1:
            continue
        for j in range(len(frame)):
            shrunk = frame[:j] + frame[j + 1 :]
            frames = case.frames[:i] + (shrunk,) + case.frames[i + 1 :]
            yield replace(case, frames=frames)
    # 3. Simplify one rule type: drop a context premise, or strip the
    #    rule to its bare head (the payload expression is left as-is;
    #    ill-typed variants fail identically on both sides and are
    #    never kept).
    for i, frame in enumerate(case.frames):
        for j, (expr, rho) in enumerate(frame):
            if not isinstance(rho, RuleType):
                continue
            for simpler in _simpler_rules(rho):
                binding = ((expr, simpler),)
                shrunk = frame[:j] + binding + frame[j + 1 :]
                frames = case.frames[:i] + (shrunk,) + case.frames[i + 1 :]
                yield replace(case, frames=frames)
    # 4. Shrink the query: a direct subterm, then the base anchor.
    for smaller in _simpler_types(case.query):
        yield replace(case, query=smaller)


def _simpler_rules(rho: RuleType) -> Iterator[Type]:
    head = rho.head
    context = rho.context
    for k in range(len(context)):
        try:
            yield rule(head, context[:k] + context[k + 1 :], rho.tvars)
        except Exception:  # noqa: BLE001 - malformed variant, skip it
            continue
    if not rho.tvars:
        yield head


def _simpler_types(tau: Type) -> Iterator[Type]:
    if isinstance(tau, TCon) and tau.args:
        for arg in tau.args:
            yield arg
    if tau != INT:
        yield INT
