"""The type translation ``|.|`` from lambda_=> to System F (Fig. 2).

::

    |alpha|                         = alpha
    |Int|                           = Int            (and every constructor)
    |tau1 -> tau2|                  = |tau1| -> |tau2|
    |forall a-bar.{rho-bar} => tau| = forall a-bar. |rho1| -> ... -> |rhon| -> |tau|

Contexts are canonically ordered (see :mod:`repro.core.types`), which
makes the translation unique as the paper requires.  The degenerate rule
type ``{} => tau`` does not exist in our representation (it *is* ``tau``),
so the paper's ``|{} => tau| = () -> |tau|`` clause is not needed; a rule
with quantifiers but an empty context translates to a bare ``forall``,
whose type abstraction already suspends evaluation.
"""

from __future__ import annotations

from ..core.terms import InterfaceDecl, Signature
from ..core.types import RuleType, TCon, TFun, TVar, Type
from ..systemf.ast import FTCon, FTFun, FTVar, FType, f_forall, f_fun
from ..systemf.typecheck import FInterface, FSignature


def translate_type(tau: Type) -> FType:
    """``|tau|`` -- the System F image of a lambda_=> type."""
    match tau:
        case TVar(name):
            return FTVar(name)
        case TCon(name, args):
            return FTCon(name, tuple(translate_type(a) for a in args))
        case TFun(arg, res):
            return FTFun(translate_type(arg), translate_type(res))
        case RuleType():
            body = f_fun(
                *(translate_type(rho) for rho in tau.context),
                translate_type(tau.head),
            )
            return f_forall(tau.tvars, body)
    raise TypeError(f"not a Type: {tau!r}")


def translate_interface(decl: InterfaceDecl) -> FInterface:
    return FInterface(
        name=decl.name,
        tvars=decl.tvars,
        fields=tuple((name, translate_type(t)) for name, t in decl.fields),
    )


def translate_signature(signature: Signature) -> FSignature:
    return FSignature(translate_interface(decl) for decl in signature)
