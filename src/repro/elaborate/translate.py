"""Type-directed elaboration of lambda_=> into System F (Fig. 2).

The judgment ``Gamma | Delta |- e : tau ~> E`` is implemented as a
function returning both the lambda_=> type and the System F term.  The
translation environment ``Delta`` is the same :class:`ImplicitEnv` used by
the type system, with entry payloads now carrying System F *evidence*
expressions (the paper's evidence variables ``x``); rule ``TrRes`` reads a
resolution :class:`Derivation` back as an evidence term::

    TrRes:   Delta |-r forall a-bar.{rho-bar} => tau
                 ~>  /\\a-bar. \\(x-bar : |rho-bar|). E E-bar

where ``E`` is the looked-up evidence applied to the matching type
arguments, and each ``E_i`` is either a bound assumption variable
(``rho_i`` in the queried context -- *partial resolution*) or a
recursively resolved evidence term.

This module deliberately re-checks all typing side conditions rather than
assuming a prior :mod:`repro.core.typecheck` pass, so elaboration is safe
to call directly; the pipeline still exposes both stages separately for
the experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from ..core.env import ImplicitEnv, RuleEntry
from ..core.prims import prim_spec
from ..obs import collecting
from ..obs.stats import ResolutionStats
from ..core.resolution import (
    Assumption,
    ByAssumption,
    ByCorecursion,
    ByResolution,
    Derivation,
    Resolver,
)
from ..core.subst import subst_type, zip_subst
from ..core.terms import (
    App,
    BoolLit,
    EMPTY_SIGNATURE,
    Expr,
    If,
    IntLit,
    Lam,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    Signature,
    StrLit,
    TyApp,
    Var,
)
from ..core.typecheck import TypeChecker, require_unambiguous
from ..core.types import (
    BOOL,
    INT,
    RuleType,
    STRING,
    TCon,
    TFun,
    Type,
    canonical_key,
    list_of,
    pair,
    rule,
    types_alpha_eq,
)
from ..errors import TypecheckError
from ..systemf.ast import (
    FApp,
    FBoolLit,
    FExpr,
    FFix,
    FIf,
    FIntLit,
    FLam,
    FListLit,
    FPair,
    FPrim,
    FProject,
    FRecord,
    FStrLit,
    FTyApp,
    FVar,
    f_app,
    f_lam,
    f_tyapp,
    f_tylam,
)
from .types import translate_type

_evidence_counter = itertools.count()


def _fresh_evidence() -> str:
    return f"ev%{next(_evidence_counter)}"


@dataclass(frozen=True)
class Elaborator:
    """The translation ``Gamma | Delta |- e : tau ~> E``."""

    signature: Signature = field(default_factory=Signature)
    resolver: Resolver = field(default_factory=Resolver)
    #: Mirror of :attr:`TypeChecker.strict_coherence`.
    strict_coherence: bool = False
    #: Mirror of :attr:`TypeChecker.stats`.
    stats: ResolutionStats | None = field(default=None, compare=False)

    def elaborate_program(self, e: Expr) -> tuple[Type, FExpr]:
        """Translate a closed program; returns ``(tau, E)``."""
        with collecting(self.stats):
            return self.elaborate(e, {}, ImplicitEnv.empty())

    # -- the main judgment ----------------------------------------------

    def elaborate(
        self, e: Expr, gamma: Mapping[str, Type], delta: ImplicitEnv
    ) -> tuple[Type, FExpr]:
        match e:
            case IntLit(v):
                return INT, FIntLit(v)
            case BoolLit(v):
                return BOOL, FBoolLit(v)
            case StrLit(v):
                return STRING, FStrLit(v)
            case Var(name):
                if name not in gamma:
                    raise TypecheckError(f"unbound variable {name!r}")
                return gamma[name], FVar(name)
            case Prim(name):
                try:
                    return prim_spec(name).rho, FPrim(name)
                except KeyError as exc:
                    raise TypecheckError(str(exc)) from exc
            case Lam(var, var_type, body):
                inner = dict(gamma)
                inner[var] = var_type
                body_type, body_f = self.elaborate(body, inner, delta)
                return (
                    TFun(var_type, body_type),
                    FLam(var, translate_type(var_type), body_f),
                )
            case App(fn, arg):
                fn_type, fn_f = self.elaborate(fn, gamma, delta)
                if not isinstance(fn_type, TFun):
                    raise TypecheckError(
                        f"application of non-function: {fn} has type {fn_type}"
                    )
                arg_type, arg_f = self.elaborate(arg, gamma, delta)
                if not types_alpha_eq(fn_type.arg, arg_type):
                    raise TypecheckError(
                        f"argument type mismatch: expected {fn_type.arg}, got {arg_type}"
                    )
                return fn_type.res, FApp(fn_f, arg_f)
            case Query(rho):
                require_unambiguous(rho, "queried type")
                derivation = self.resolver.resolve(delta, rho)
                if self.strict_coherence:
                    from ..core.coherence import check_query_coherence

                    check_query_coherence(delta, rho, self.resolver.policy)
                return rho, self.evidence(derivation, {})
            case RuleAbs(rho, body):
                return self._elab_rule_abs(rho, body, gamma, delta)
            case TyApp(expr, type_args):
                return self._elab_ty_app(expr, type_args, gamma, delta)
            case RuleApp(expr, args):
                return self._elab_rule_app(expr, args, gamma, delta)
            case If(cond, then, orelse):
                cond_type, cond_f = self.elaborate(cond, gamma, delta)
                if not types_alpha_eq(cond_type, BOOL):
                    raise TypecheckError(f"if-condition has type {cond_type}, not Bool")
                then_type, then_f = self.elaborate(then, gamma, delta)
                else_type, else_f = self.elaborate(orelse, gamma, delta)
                if not types_alpha_eq(then_type, else_type):
                    raise TypecheckError(
                        f"if-branches disagree: {then_type} vs {else_type}"
                    )
                return then_type, FIf(cond_f, then_f, else_f)
            case PairE(first, second):
                first_type, first_f = self.elaborate(first, gamma, delta)
                second_type, second_f = self.elaborate(second, gamma, delta)
                return pair(first_type, second_type), FPair(first_f, second_f)
            case ListLit(elems, elem_type):
                return self._elab_list(elems, elem_type, gamma, delta)
            case Record(iface, type_args, fields):
                return self._elab_record(iface, type_args, fields, gamma, delta)
            case Project(expr, fname):
                return self._elab_project(expr, fname, gamma, delta)
        raise TypecheckError(f"cannot elaborate expression {e!r}")

    # -- TrRule ----------------------------------------------------------

    def _elab_rule_abs(
        self, rho: Type, body: Expr, gamma: Mapping[str, Type], delta: ImplicitEnv
    ) -> tuple[Type, FExpr]:
        if not isinstance(rho, RuleType):
            raise TypecheckError(f"rule abstraction requires a rule type, got {rho}")
        require_unambiguous(rho, "rule type")
        clash = set(rho.tvars) & TypeChecker._env_ftv(gamma, delta)
        if clash:
            raise TypecheckError(
                f"quantified variable(s) {sorted(clash)} of {rho} already occur "
                "free in the environment"
            )
        evidence_vars = [(_fresh_evidence(), r) for r in rho.context]
        inner_delta = delta.push(
            RuleEntry(r, payload=FVar(x)) for x, r in evidence_vars
        )
        body_type, body_f = self.elaborate(body, gamma, inner_delta)
        if not types_alpha_eq(body_type, rho.head):
            raise TypecheckError(
                f"rule body has type {body_type}, but the rule type promises {rho.head}"
            )
        wrapped = f_lam(
            [(x, translate_type(r)) for x, r in evidence_vars], body_f
        )
        return rho, f_tylam(rho.tvars, wrapped)

    # -- TrInst ----------------------------------------------------------

    def _elab_ty_app(
        self,
        expr: Expr,
        type_args: tuple[Type, ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> tuple[Type, FExpr]:
        expr_type, expr_f = self.elaborate(expr, gamma, delta)
        if not isinstance(expr_type, RuleType) or not expr_type.tvars:
            raise TypecheckError(
                f"type application of non-polymorphic expression of type {expr_type}"
            )
        theta = zip_subst(expr_type.tvars, type_args)
        result = rule(
            subst_type(theta, expr_type.head),
            tuple(subst_type(theta, r) for r in expr_type.context),
        )
        return result, f_tyapp(expr_f, [translate_type(t) for t in type_args])

    # -- TrRApp ----------------------------------------------------------

    def _elab_rule_app(
        self,
        expr: Expr,
        args: tuple[tuple[Expr, Type], ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> tuple[Type, FExpr]:
        expr_type, expr_f = self.elaborate(expr, gamma, delta)
        if not isinstance(expr_type, RuleType) or expr_type.tvars:
            raise TypecheckError(
                f"rule application requires a monomorphic rule type, got {expr_type}"
            )
        translated: dict[tuple, FExpr] = {}
        for arg_expr, arg_rho in args:
            key = canonical_key(arg_rho)
            if key in translated:
                raise TypecheckError(
                    f"duplicate evidence for {arg_rho} in rule application"
                )
            actual, arg_f = self.elaborate(arg_expr, gamma, delta)
            if not types_alpha_eq(actual, arg_rho):
                raise TypecheckError(
                    f"evidence {arg_expr} has type {actual}, annotated {arg_rho}"
                )
            translated[key] = arg_f
        required = [canonical_key(r) for r in expr_type.context]
        if set(required) != set(translated):
            raise TypecheckError(
                f"rule application does not supply exactly the context of {expr_type}"
            )
        # Evidence arguments in the rule type's canonical context order.
        ordered = [translated[key] for key in required]
        return expr_type.head, f_app(expr_f, *ordered)

    # -- TrRes -----------------------------------------------------------

    def evidence(
        self, derivation: Derivation, assumption_vars: dict[int, str]
    ) -> FExpr:
        """Rebuild the ``TrRes`` evidence term from a resolution derivation.

        ``assumption_vars`` maps :class:`Assumption` token identities to the
        lambda-bound evidence variables of enclosing partial resolutions.
        """
        inner_vars = dict(assumption_vars)
        binders: list[tuple[str, Type]] = []
        for token in derivation.assumptions:
            name = _fresh_evidence()
            inner_vars[id(token)] = name
            binders.append((name, token.rho))
        fix_var: str | None = None
        if derivation.cycle is not None:
            # Cycle head: premises below refer back to this very piece of
            # evidence, so bind it recursively (System F ``fix``) and make
            # the binder visible before elaborating the subtree.
            fix_var = _fresh_evidence()
            inner_vars[id(derivation.cycle)] = fix_var

        payload = derivation.lookup.payload
        if isinstance(payload, Assumption):
            # EXTENDING/BACKTRACKING strategies may look up an assumption
            # pushed by an enclosing query; its evidence is that binder.
            head_f: FExpr = FVar(inner_vars[id(payload)])
        elif isinstance(payload, FExpr):
            head_f = payload
        else:
            raise TypecheckError(
                f"environment entry {derivation.lookup.entry.rho} carries no "
                f"System F evidence (payload {payload!r}); elaboration requires "
                "evidence-bearing environments"
            )
        head_f = f_tyapp(
            head_f, [translate_type(t) for t in derivation.lookup.type_args]
        )
        ev_args: list[FExpr] = []
        for premise in derivation.premises:
            if isinstance(premise, ByAssumption):
                ev_args.append(FVar(inner_vars[id(premise.token)]))
            elif isinstance(premise, ByCorecursion):
                ev_args.append(FVar(inner_vars[id(premise.token)]))
            elif isinstance(premise, ByResolution):
                ev_args.append(self.evidence(premise.derivation, inner_vars))
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"unknown premise {premise!r}")
        body = f_app(head_f, *ev_args)
        wrapped = f_lam([(x, translate_type(r)) for x, r in binders], body)
        out = f_tylam(derivation.tvars, wrapped)
        if fix_var is not None:
            out = FFix(fix_var, translate_type(derivation.query), out)
        return out

    # -- extensions -------------------------------------------------------

    def _elab_list(
        self,
        elems: tuple[Expr, ...],
        elem_type: Type | None,
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> tuple[Type, FExpr]:
        elems_f: list[FExpr] = []
        for el in elems:
            actual, el_f = self.elaborate(el, gamma, delta)
            if elem_type is None:
                elem_type = actual
            elif not types_alpha_eq(actual, elem_type):
                raise TypecheckError(
                    f"list element {el} has type {actual}, expected {elem_type}"
                )
            elems_f.append(el_f)
        if elem_type is None:
            raise TypecheckError("empty list literal needs an element type")
        return list_of(elem_type), FListLit(tuple(elems_f), translate_type(elem_type))

    def _elab_record(
        self,
        iface: str,
        type_args: tuple[Type, ...],
        fields: tuple[tuple[str, Expr], ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> tuple[Type, FExpr]:
        decl = self.signature.get(iface)
        if decl is None:
            raise TypecheckError(f"unknown interface {iface!r}")
        if len(type_args) != len(decl.tvars):
            raise TypecheckError(
                f"interface {iface} expects {len(decl.tvars)} type argument(s)"
            )
        if {n for n, _ in fields} != set(decl.field_names()):
            raise TypecheckError(f"field mismatch in {iface} implementation")
        theta = zip_subst(decl.tvars, type_args)
        fields_f: list[tuple[str, FExpr]] = []
        for name, expr in fields:
            expected = subst_type(theta, decl.field_type(name))
            actual, field_f = self.elaborate(expr, gamma, delta)
            if not types_alpha_eq(actual, expected):
                raise TypecheckError(
                    f"field {iface}.{name} has type {actual}, expected {expected}"
                )
            fields_f.append((name, field_f))
        return (
            TCon(iface, tuple(type_args)),
            FRecord(iface, tuple(translate_type(t) for t in type_args), tuple(fields_f)),
        )

    def _elab_project(
        self, expr: Expr, fname: str, gamma: Mapping[str, Type], delta: ImplicitEnv
    ) -> tuple[Type, FExpr]:
        expr_type, expr_f = self.elaborate(expr, gamma, delta)
        if not isinstance(expr_type, TCon):
            raise TypecheckError(f"projection from non-record type {expr_type}")
        decl = self.signature.get(expr_type.name)
        if decl is None:
            raise TypecheckError(f"projection from non-interface type {expr_type}")
        try:
            field_type = decl.field_type(fname)
        except KeyError as exc:
            raise TypecheckError(str(exc)) from exc
        theta = zip_subst(decl.tvars, expr_type.args)
        return subst_type(theta, field_type), FProject(expr_f, fname)


def elaborate(
    e: Expr,
    *,
    signature: Signature = EMPTY_SIGNATURE,
    resolver: Resolver | None = None,
) -> tuple[Type, FExpr]:
    """Translate a closed lambda_=> program into System F."""
    elab = Elaborator(signature=signature, resolver=resolver or Resolver())
    return elab.elaborate_program(e)
