"""Elaboration of lambda_=> into System F (paper section 4)."""

from .translate import Elaborator, elaborate
from .types import translate_interface, translate_signature, translate_type

__all__ = [
    "Elaborator",
    "elaborate",
    "translate_interface",
    "translate_signature",
    "translate_type",
]
