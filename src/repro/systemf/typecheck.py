"""A complete type checker for the extended System F target.

Implements the rules of the paper's appendix (Fig. "System F Type
System"): F-Int, F-Var, F-Abs, F-App, F-TApp, F-TAbs, plus the evident
rules for the extensions (literals, conditionals, pairs, lists, records,
primitives).  The elaboration correctness tests (experiment T2) run every
elaborated program through this checker and compare the result with the
translated lambda_=> type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SystemFTypeError
from .ast import (
    FApp,
    FBoolLit,
    FExpr,
    FFix,
    FForall,
    FIf,
    FIntLit,
    FLam,
    FListLit,
    FPair,
    FPrim,
    FProject,
    FRecord,
    FStrLit,
    FTCon,
    FTFun,
    FTVar,
    FTyApp,
    FTyLam,
    FType,
    FVar,
    F_BOOL,
    F_INT,
    F_STRING,
    f_list,
    f_pair,
    ftype_ftv,
    ftypes_eq,
    pretty_ftype,
    subst_ftype,
)


@dataclass(frozen=True)
class FInterface:
    """A record (interface) declaration at the System F level."""

    name: str
    tvars: tuple[str, ...]
    fields: tuple[tuple[str, FType], ...]

    def field_type(self, name: str) -> FType:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        raise KeyError(f"interface {self.name} has no field {name!r}")

    def field_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.fields)


class FSignature:
    """Interface declarations visible to a System F program."""

    def __init__(self, interfaces: Iterable[FInterface] = ()):
        self._interfaces = {decl.name: decl for decl in interfaces}

    def get(self, name: str) -> FInterface | None:
        return self._interfaces.get(name)

    def __iter__(self):
        return iter(self._interfaces.values())


EMPTY_FSIGNATURE = FSignature()


def _prim_ftype(name: str) -> FType:
    # Imported lazily: the canonical translation |.| of primitive types
    # lives with the elaborator, which itself depends only on systemf.ast.
    from ..core.prims import prim_spec
    from ..elaborate.types import translate_type

    return translate_type(prim_spec(name).rho)


@dataclass(frozen=True)
class FTypeChecker:
    signature: FSignature = field(default_factory=FSignature)

    def check_program(self, e: FExpr) -> FType:
        return self.check(e, {})

    def check(self, e: FExpr, env: Mapping[str, FType]) -> FType:
        match e:
            case FIntLit(_):
                return F_INT
            case FBoolLit(_):
                return F_BOOL
            case FStrLit(_):
                return F_STRING
            case FVar(name):
                if name not in env:
                    raise SystemFTypeError(f"unbound System F variable {name!r}")
                return env[name]
            case FPrim(name):
                try:
                    return _prim_ftype(name)
                except KeyError as exc:
                    raise SystemFTypeError(str(exc)) from exc
            case FLam(var, var_type, body):
                inner = dict(env)
                inner[var] = var_type
                return FTFun(var_type, self.check(body, inner))
            case FApp(fn, arg):
                fn_type = self.check(fn, env)
                if not isinstance(fn_type, FTFun):
                    raise SystemFTypeError(
                        f"application of non-function of type {pretty_ftype(fn_type)}"
                    )
                arg_type = self.check(arg, env)
                if not ftypes_eq(fn_type.arg, arg_type):
                    raise SystemFTypeError(
                        f"argument type mismatch: expected "
                        f"{pretty_ftype(fn_type.arg)}, got {pretty_ftype(arg_type)}"
                    )
                return fn_type.res
            case FTyLam(var, body):
                free: set[str] = set()
                for t in env.values():
                    free |= ftype_ftv(t)
                if var in free:
                    raise SystemFTypeError(
                        f"type abstraction over {var} captures a free variable "
                        "of the term environment (F-TAbs side condition)"
                    )
                return FForall(var, self.check(body, env))
            case FTyApp(expr, type_arg):
                expr_type = self.check(expr, env)
                if not isinstance(expr_type, FForall):
                    raise SystemFTypeError(
                        f"type application of non-polymorphic type "
                        f"{pretty_ftype(expr_type)}"
                    )
                return subst_ftype({expr_type.var: type_arg}, expr_type.body)
            case FIf(cond, then, orelse):
                if not ftypes_eq(self.check(cond, env), F_BOOL):
                    raise SystemFTypeError("if-condition is not Bool")
                then_type = self.check(then, env)
                else_type = self.check(orelse, env)
                if not ftypes_eq(then_type, else_type):
                    raise SystemFTypeError(
                        f"if-branches disagree: {pretty_ftype(then_type)} vs "
                        f"{pretty_ftype(else_type)}"
                    )
                return then_type
            case FPair(first, second):
                return f_pair(self.check(first, env), self.check(second, env))
            case FListLit(elems, elem_type):
                for el in elems:
                    actual = self.check(el, env)
                    if not ftypes_eq(actual, elem_type):
                        raise SystemFTypeError(
                            f"list element has type {pretty_ftype(actual)}, "
                            f"expected {pretty_ftype(elem_type)}"
                        )
                return f_list(elem_type)
            case FRecord(iface, type_args, fields):
                return self._check_record(iface, type_args, fields, env)
            case FProject(expr, fname):
                expr_type = self.check(expr, env)
                if not isinstance(expr_type, FTCon):
                    raise SystemFTypeError(
                        f"projection from non-record type {pretty_ftype(expr_type)}"
                    )
                decl = self.signature.get(expr_type.name)
                if decl is None:
                    raise SystemFTypeError(
                        f"projection from non-interface type {pretty_ftype(expr_type)}"
                    )
                try:
                    field_type = decl.field_type(fname)
                except KeyError as exc:
                    raise SystemFTypeError(str(exc)) from exc
                theta = dict(zip(decl.tvars, expr_type.args))
                return subst_ftype(theta, field_type)
            case FFix(var, var_type, body):
                inner = dict(env)
                inner[var] = var_type
                body_type = self.check(body, inner)
                if not ftypes_eq(body_type, var_type):
                    raise SystemFTypeError(
                        f"fix body has type {pretty_ftype(body_type)}, "
                        f"expected {pretty_ftype(var_type)}"
                    )
                return var_type
        raise SystemFTypeError(f"cannot type System F expression {e!r}")

    def _check_record(
        self,
        iface: str,
        type_args: tuple[FType, ...],
        fields: tuple[tuple[str, FExpr], ...],
        env: Mapping[str, FType],
    ) -> FType:
        decl = self.signature.get(iface)
        if decl is None:
            raise SystemFTypeError(f"unknown interface {iface!r}")
        if len(type_args) != len(decl.tvars):
            raise SystemFTypeError(
                f"interface {iface} expects {len(decl.tvars)} type argument(s)"
            )
        if {n for n, _ in fields} != set(decl.field_names()):
            raise SystemFTypeError(f"field mismatch in {iface} implementation")
        theta = dict(zip(decl.tvars, type_args))
        for name, expr in fields:
            expected = subst_ftype(theta, decl.field_type(name))
            actual = self.check(expr, env)
            if not ftypes_eq(actual, expected):
                raise SystemFTypeError(
                    f"field {iface}.{name} has type {pretty_ftype(actual)}, "
                    f"expected {pretty_ftype(expected)}"
                )
        return FTCon(iface, tuple(type_args))


def ftypecheck(e: FExpr, signature: FSignature = EMPTY_FSIGNATURE) -> FType:
    """Type a closed System F program."""
    return FTypeChecker(signature=signature).check_program(e)
