"""Abstract syntax of the System F target language (paper section 4).

The paper elaborates lambda_=> into "System F extended with the integer
and unit types"; since our lambda_=> carries the examples' extensions
(booleans, strings, pairs, lists, records, primitives), the target carries
the same ones.  Types::

    T ::= alpha | T -> T | forall alpha . T | K T-bar

and expressions::

    E ::= x | \\x:T.E | E E | /\\alpha.E | E T | literals | extensions

``FForall`` types compare up to alpha-equivalence via canonical keys, in
the same style as :mod:`repro.core.types`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping


class FType:
    """Base class of System F types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover
        return pretty_ftype(self)


@dataclass(frozen=True)
class FTVar(FType):
    name: str


@dataclass(frozen=True)
class FTCon(FType):
    name: str
    args: tuple[FType, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class FTFun(FType):
    arg: FType
    res: FType


@dataclass(frozen=True, eq=False)
class FForall(FType):
    var: str
    body: FType

    def canonical_key(self, bound: Mapping[str, int] | None = None) -> tuple:
        return ftype_key(self, dict(bound or {}))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FForall):
            return NotImplemented
        return ftype_key(self, {}) == ftype_key(other, {})

    def __hash__(self) -> int:
        return hash(ftype_key(self, {}))


F_INT = FTCon("Int")
F_BOOL = FTCon("Bool")
F_STRING = FTCon("String")
F_UNIT = FTCon("Unit")


def f_pair(a: FType, b: FType) -> FTCon:
    return FTCon("Pair", (a, b))


def f_list(a: FType) -> FTCon:
    return FTCon("List", (a,))


def f_forall(tvars: Iterable[str], body: FType) -> FType:
    out = body
    for name in reversed(tuple(tvars)):
        out = FForall(name, out)
    return out


def f_fun(*types: FType) -> FType:
    if not types:
        raise ValueError("f_fun() needs at least one type")
    out = types[-1]
    for t in reversed(types[:-1]):
        out = FTFun(t, out)
    return out


def ftype_key(t: FType, bound: dict[str, int]) -> tuple:
    match t:
        case FTVar(name):
            if name in bound:
                return ("bv", bound[name])
            return ("fv", name)
        case FTCon(name, args):
            return ("con", name, tuple(ftype_key(a, bound) for a in args))
        case FTFun(arg, res):
            return ("fun", ftype_key(arg, bound), ftype_key(res, bound))
        case FForall(var, body):
            inner = dict(bound)
            inner[var] = len(bound)
            return ("forall", ftype_key(body, inner))
    raise TypeError(f"not an FType: {t!r}")


def ftypes_eq(a: FType, b: FType) -> bool:
    """Alpha-equivalence of System F types."""
    return ftype_key(a, {}) == ftype_key(b, {})


def ftype_ftv(t: FType) -> frozenset[str]:
    match t:
        case FTVar(name):
            return frozenset((name,))
        case FTCon(_, args):
            out: frozenset[str] = frozenset()
            for a in args:
                out |= ftype_ftv(a)
            return out
        case FTFun(arg, res):
            return ftype_ftv(arg) | ftype_ftv(res)
        case FForall(var, body):
            return ftype_ftv(body) - {var}
    raise TypeError(f"not an FType: {t!r}")


_fresh = itertools.count()


def subst_ftype(theta: Mapping[str, FType], t: FType) -> FType:
    """Capture-avoiding substitution on System F types."""
    if not theta:
        return t
    match t:
        case FTVar(name):
            return theta.get(name, t)
        case FTCon(name, args):
            return FTCon(name, tuple(subst_ftype(theta, a) for a in args))
        case FTFun(arg, res):
            return FTFun(subst_ftype(theta, arg), subst_ftype(theta, res))
        case FForall(var, body):
            inner = {k: v for k, v in theta.items() if k != var}
            if not inner:
                return t
            range_ftv: set[str] = set()
            for tau in inner.values():
                range_ftv |= ftype_ftv(tau)
            if var in range_ftv:
                fresh = f"{var}%f{next(_fresh)}"
                inner[var] = FTVar(fresh)
                return FForall(fresh, subst_ftype(inner, body))
            return FForall(var, subst_ftype(inner, body))
    raise TypeError(f"not an FType: {t!r}")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class FExpr:
    """Base class of System F expressions."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover
        return pretty_fexpr(self)


@dataclass(frozen=True)
class FVar(FExpr):
    name: str


@dataclass(frozen=True)
class FIntLit(FExpr):
    value: int


@dataclass(frozen=True)
class FBoolLit(FExpr):
    value: bool


@dataclass(frozen=True)
class FStrLit(FExpr):
    value: str


@dataclass(frozen=True)
class FLam(FExpr):
    var: str
    var_type: FType
    body: FExpr


@dataclass(frozen=True)
class FApp(FExpr):
    fn: FExpr
    arg: FExpr


@dataclass(frozen=True)
class FTyLam(FExpr):
    """A type abstraction ``/\\alpha. E``."""

    var: str
    body: FExpr


@dataclass(frozen=True)
class FTyApp(FExpr):
    """A type application ``E T``."""

    expr: FExpr
    type_arg: FType


@dataclass(frozen=True)
class FIf(FExpr):
    cond: FExpr
    then: FExpr
    orelse: FExpr


@dataclass(frozen=True)
class FPair(FExpr):
    first: FExpr
    second: FExpr


@dataclass(frozen=True)
class FListLit(FExpr):
    elems: tuple[FExpr, ...]
    elem_type: FType

    def __post_init__(self) -> None:
        if not isinstance(self.elems, tuple):
            object.__setattr__(self, "elems", tuple(self.elems))


@dataclass(frozen=True)
class FPrim(FExpr):
    """A built-in primitive (shared table, see :mod:`repro.core.prims`)."""

    name: str


@dataclass(frozen=True)
class FRecord(FExpr):
    iface: str
    type_args: tuple[FType, ...]
    fields: tuple[tuple[str, FExpr], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.type_args, tuple):
            object.__setattr__(self, "type_args", tuple(self.type_args))
        if not isinstance(self.fields, tuple):
            object.__setattr__(self, "fields", tuple(tuple(f) for f in self.fields))


@dataclass(frozen=True)
class FProject(FExpr):
    expr: FExpr
    field: str


@dataclass(frozen=True)
class FFix(FExpr):
    """A recursive binder ``fix x:T. E`` (the elaboration of corecursive
    evidence: a resolution cycle closes into a mu-bound System F term).

    Typing is the standard fixpoint rule -- under ``x : T`` the body must
    have type ``T``, and the whole term has type ``T``.  Operationally
    ``fix x:T.E`` unfolds to ``E[x := fix x:T.E]``; the big-step
    evaluator ties the knot through the environment instead
    (:mod:`repro.systemf.eval`).
    """

    var: str
    var_type: FType
    body: FExpr


def f_app(fn: FExpr, *args: FExpr) -> FExpr:
    out = fn
    for a in args:
        out = FApp(out, a)
    return out


def f_tyapp(expr: FExpr, types: Iterable[FType]) -> FExpr:
    out = expr
    for t in types:
        out = FTyApp(out, t)
    return out


def f_tylam(tvars: Iterable[str], body: FExpr) -> FExpr:
    out = body
    for name in reversed(tuple(tvars)):
        out = FTyLam(name, out)
    return out


def f_lam(bindings: Iterable[tuple[str, FType]], body: FExpr) -> FExpr:
    out = body
    for name, t in reversed(tuple(bindings)):
        out = FLam(name, t, out)
    return out


# ---------------------------------------------------------------------------
# Pretty printing (compact; for error messages and tests)
# ---------------------------------------------------------------------------


def pretty_ftype(t: FType, prec: int = 2) -> str:
    match t:
        case FTVar(name):
            return name
        case FTCon("Pair", (a, b)):
            return f"({pretty_ftype(a)}, {pretty_ftype(b)})"
        case FTCon("List", (a,)):
            return f"[{pretty_ftype(a)}]"
        case FTCon(name, ()):
            return name
        case FTCon(name, args):
            text = name + " " + " ".join(pretty_ftype(a, 0) for a in args)
            return f"({text})" if prec < 1 else text
        case FTFun(arg, res):
            text = f"{pretty_ftype(arg, 1)} -> {pretty_ftype(res, 2)}"
            return f"({text})" if prec < 2 else text
        case FForall(var, body):
            text = f"forall {var}. {pretty_ftype(body, 2)}"
            return f"({text})" if prec < 2 else text
    raise TypeError(f"not an FType: {t!r}")


def pretty_fexpr(e: FExpr, prec: int = 10) -> str:
    match e:
        case FVar(name):
            return name
        case FIntLit(v):
            return str(v)
        case FBoolLit(v):
            return "True" if v else "False"
        case FStrLit(v):
            return repr(v)
        case FPrim(name):
            return f"#{name}"
        case FLam(var, var_type, body):
            text = f"\\{var}:{pretty_ftype(var_type)}. {pretty_fexpr(body)}"
            return f"({text})" if prec < 10 else text
        case FApp(fn, arg):
            text = f"{pretty_fexpr(fn, 2)} {pretty_fexpr(arg, 1)}"
            return f"({text})" if prec < 2 else text
        case FTyLam(var, body):
            text = f"/\\{var}. {pretty_fexpr(body)}"
            return f"({text})" if prec < 10 else text
        case FTyApp(expr, t):
            text = f"{pretty_fexpr(expr, 2)} @{pretty_ftype(t, 0)}"
            return f"({text})" if prec < 2 else text
        case FIf(cond, then, orelse):
            text = (
                f"if {pretty_fexpr(cond)} then {pretty_fexpr(then)} "
                f"else {pretty_fexpr(orelse)}"
            )
            return f"({text})" if prec < 10 else text
        case FPair(first, second):
            return f"({pretty_fexpr(first)}, {pretty_fexpr(second)})"
        case FListLit(elems, _):
            return "[" + ", ".join(pretty_fexpr(el) for el in elems) + "]"
        case FRecord(iface, _, fields):
            body = ", ".join(f"{n} = {pretty_fexpr(f)}" for n, f in fields)
            return f"{iface} {{{body}}}"
        case FProject(expr, field):
            return f"{pretty_fexpr(expr, 1)}.{field}"
        case FFix(var, var_type, body):
            text = f"fix {var}:{pretty_ftype(var_type)}. {pretty_fexpr(body)}"
            return f"({text})" if prec < 10 else text
    raise TypeError(f"not an FExpr: {e!r}")
