"""Small-step CBV reduction for System F (the paper's ``-->*``).

Section 4 defines ``eval(e) = V where . | . |- e : tau ~> E and
E -->* V`` with ``-->`` "System F's standard single-step call-by-value
reduction relation".  The big-step interpreter in :mod:`repro.systemf.eval`
is the efficient implementation; this module is the *faithful* one: a
substitution-based single-step relation, plus its reflexive-transitive
closure.  Tests check the two agree (they are different enough --
environments+closures vs. textual substitution -- that agreement is real
evidence).

Values::

    V ::= n | b | s | \\x:T.E | /\\a.E | (V, V) | [V...] | I {u = V...}
        | #prim V1 ... Vk          (k < arity: partial application)

Reduction is left-to-right CBV; type application erases at primitives
and substitutes at type abstractions.  Only *closed* terms are reduced,
so term substitution never captures (the substituted value is closed);
type substitution still respects binders.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..core.prims import prim_spec
from ..errors import EvalError
from .ast import (
    FApp,
    FBoolLit,
    FExpr,
    FFix,
    FIf,
    FIntLit,
    FLam,
    FListLit,
    FPair,
    FPrim,
    FProject,
    FRecord,
    FStrLit,
    FTyApp,
    FTyLam,
    FType,
    FVar,
    subst_ftype,
)

MAX_STEPS = 1_000_000


def is_value(e: FExpr) -> bool:
    match e:
        case FIntLit(_) | FBoolLit(_) | FStrLit(_) | FLam(_, _, _) | FTyLam(_, _):
            return True
        case FPrim(_):
            return True
        case FPair(a, b):
            return is_value(a) and is_value(b)
        case FListLit(elems, _):
            return all(is_value(el) for el in elems)
        case FRecord(_, _, fields):
            return all(is_value(f) for _, f in fields)
        case FApp(_, _):
            spine, args = _unwind(e)
            if isinstance(spine, FPrim):
                return (
                    len(args) < _prim_arity(spine.name)
                    and all(is_value(a) for a in args)
                )
            return False
        case _:
            return False


def _unwind(e: FExpr) -> tuple[FExpr, list[FExpr]]:
    """Strip an application spine: ``f a b c`` -> (f, [a, b, c]).

    Type applications inside the spine are erased (they are no-ops on
    primitives, the only polymorphic spine heads that survive to values).
    """
    args: list[FExpr] = []
    while True:
        if isinstance(e, FApp):
            args.append(e.arg)
            e = e.fn
        elif isinstance(e, FTyApp) and _erasable(e.expr):
            e = e.expr
        else:
            return e, list(reversed(args))


def _erasable(e: FExpr) -> bool:
    spine, _ = (e, []) if not isinstance(e, (FApp, FTyApp)) else _unwind(e)
    return isinstance(spine, FPrim)


# ---------------------------------------------------------------------------
# Substitution (terms are closed at substitution time; see module docs)
# ---------------------------------------------------------------------------


def subst_term(name: str, value: FExpr, e: FExpr) -> FExpr:
    match e:
        case FVar(other):
            return value if other == name else e
        case FIntLit(_) | FBoolLit(_) | FStrLit(_) | FPrim(_):
            return e
        case FLam(var, var_type, body):
            if var == name:
                return e
            return FLam(var, var_type, subst_term(name, value, body))
        case FApp(fn, arg):
            return FApp(subst_term(name, value, fn), subst_term(name, value, arg))
        case FTyLam(var, body):
            return FTyLam(var, subst_term(name, value, body))
        case FTyApp(expr, type_arg):
            return FTyApp(subst_term(name, value, expr), type_arg)
        case FIf(cond, then, orelse):
            return FIf(
                subst_term(name, value, cond),
                subst_term(name, value, then),
                subst_term(name, value, orelse),
            )
        case FPair(first, second):
            return FPair(subst_term(name, value, first), subst_term(name, value, second))
        case FListLit(elems, elem_type):
            return FListLit(tuple(subst_term(name, value, el) for el in elems), elem_type)
        case FRecord(iface, type_args, fields):
            return FRecord(
                iface,
                type_args,
                tuple((n, subst_term(name, value, f)) for n, f in fields),
            )
        case FProject(expr, field):
            return FProject(subst_term(name, value, expr), field)
        case FFix(var, var_type, body):
            if var == name:
                return e
            return FFix(var, var_type, subst_term(name, value, body))
    raise EvalError(f"cannot substitute in {e!r}")


def subst_type_in_term(name: str, tau: FType, e: FExpr) -> FExpr:
    theta: Mapping[str, FType] = {name: tau}
    match e:
        case FVar(_) | FIntLit(_) | FBoolLit(_) | FStrLit(_) | FPrim(_):
            return e
        case FLam(var, var_type, body):
            return FLam(var, subst_ftype(theta, var_type), subst_type_in_term(name, tau, body))
        case FApp(fn, arg):
            return FApp(subst_type_in_term(name, tau, fn), subst_type_in_term(name, tau, arg))
        case FTyLam(var, body):
            if var == name:
                return e
            return FTyLam(var, subst_type_in_term(name, tau, body))
        case FTyApp(expr, type_arg):
            return FTyApp(
                subst_type_in_term(name, tau, expr), subst_ftype(theta, type_arg)
            )
        case FIf(cond, then, orelse):
            return FIf(
                subst_type_in_term(name, tau, cond),
                subst_type_in_term(name, tau, then),
                subst_type_in_term(name, tau, orelse),
            )
        case FPair(first, second):
            return FPair(
                subst_type_in_term(name, tau, first),
                subst_type_in_term(name, tau, second),
            )
        case FListLit(elems, elem_type):
            return FListLit(
                tuple(subst_type_in_term(name, tau, el) for el in elems),
                subst_ftype(theta, elem_type),
            )
        case FRecord(iface, type_args, fields):
            return FRecord(
                iface,
                tuple(subst_ftype(theta, t) for t in type_args),
                tuple((n, subst_type_in_term(name, tau, f)) for n, f in fields),
            )
        case FProject(expr, field):
            return FProject(subst_type_in_term(name, tau, expr), field)
        case FFix(var, var_type, body):
            return FFix(
                var,
                subst_ftype(theta, var_type),
                subst_type_in_term(name, tau, body),
            )
    raise EvalError(f"cannot substitute type in {e!r}")


# ---------------------------------------------------------------------------
# The single-step relation
# ---------------------------------------------------------------------------


def step(e: FExpr) -> FExpr | None:
    """One CBV step, or ``None`` if ``e`` is a value (or stuck)."""
    if is_value(e):
        return None
    match e:
        case FApp(fn, arg):
            if not is_value(fn):
                fn2 = step(fn)
                if fn2 is None:
                    raise EvalError(f"stuck applying non-value non-reducible {fn!r}")
                return FApp(fn2, arg)
            if not is_value(arg):
                arg2 = step(arg)
                if arg2 is None:
                    raise EvalError(f"stuck on argument {arg!r}")
                return FApp(fn, arg2)
            return _apply(fn, arg)
        case FTyApp(expr, type_arg):
            if isinstance(expr, FTyLam):
                return subst_type_in_term(expr.var, type_arg, expr.body)
            if is_value(expr) and _erasable(expr):
                return expr  # primitives are type-erased
            expr2 = step(expr)
            if expr2 is None:
                raise EvalError(f"stuck type-applying {expr!r}")
            return FTyApp(expr2, type_arg)
        case FIf(cond, then, orelse):
            if isinstance(cond, FBoolLit):
                return then if cond.value else orelse
            cond2 = step(cond)
            if cond2 is None:
                raise EvalError(f"stuck if-condition {cond!r}")
            return FIf(cond2, then, orelse)
        case FPair(first, second):
            if not is_value(first):
                return FPair(step(first), second)  # type: ignore[arg-type]
            return FPair(first, step(second))  # type: ignore[arg-type]
        case FListLit(elems, elem_type):
            out = list(elems)
            for i, el in enumerate(out):
                if not is_value(el):
                    out[i] = step(el)  # type: ignore[assignment]
                    return FListLit(tuple(out), elem_type)
            raise EvalError("list literal should have been a value")
        case FRecord(iface, type_args, fields):
            out_fields = list(fields)
            for i, (n, f) in enumerate(out_fields):
                if not is_value(f):
                    out_fields[i] = (n, step(f))  # type: ignore[assignment]
                    return FRecord(iface, type_args, tuple(out_fields))
            raise EvalError("record should have been a value")
        case FProject(expr, field):
            if isinstance(expr, FRecord) and is_value(expr):
                for n, f in expr.fields:
                    if n == field:
                        return f
                raise EvalError(f"record has no field {field!r}")
            expr2 = step(expr)
            if expr2 is None:
                raise EvalError(f"stuck projecting {expr!r}")
            return FProject(expr2, field)
        case FVar(name):
            raise EvalError(f"free variable {name!r} in small-step evaluation")
        case FFix(var, _, body):
            # fix x:T.E --> E[x := fix x:T.E]; MAX_STEPS bounds the
            # divergence of non-productive unfoldings.
            return subst_term(var, e, body)
    raise EvalError(f"stuck term {e!r}")


def _apply(fn: FExpr, arg: FExpr) -> FExpr:
    if isinstance(fn, FLam):
        return subst_term(fn.var, arg, fn.body)
    spine, args = _unwind(FApp(fn, arg))
    if isinstance(spine, FPrim):
        arity = _prim_arity(spine.name)
        if len(args) == arity:
            return _delta(spine.name, args)
        if len(args) < arity:
            # A partial application is itself a value; but _apply is only
            # called on non-values, so this cannot happen.
            raise EvalError("partial application reached _apply")
    raise EvalError(f"application of non-function {fn!r}")


def _delta(name: str, args: list[FExpr]) -> FExpr:
    """Delta rules, entirely syntactic.

    First-order primitives compute directly on literal values.
    Higher-order primitives (map, foldr, filter, sortBy) *unfold* into
    further redexes, so evaluation order stays visible in the trace --
    the honest small-step treatment.
    """
    match name:
        case "add":
            return FIntLit(_int(args[0]) + _int(args[1]))
        case "sub":
            return FIntLit(_int(args[0]) - _int(args[1]))
        case "mul":
            return FIntLit(_int(args[0]) * _int(args[1]))
        case "div":
            if _int(args[1]) == 0:
                raise EvalError("division by zero")
            return FIntLit(_int(args[0]) // _int(args[1]))
        case "negate":
            return FIntLit(-_int(args[0]))
        case "mod":
            if _int(args[1]) == 0:
                raise EvalError("modulo by zero")
            return FIntLit(_int(args[0]) % _int(args[1]))
        case "gtInt":
            return FBoolLit(_int(args[0]) > _int(args[1]))
        case "geqInt":
            return FBoolLit(_int(args[0]) >= _int(args[1]))
        case "showBool":
            return FStrLit("True" if _bool(args[0]) else "False")
        case "sum":
            return FIntLit(sum(_int(el) for el in _list(args[0]).elems))
        case "append":
            left, right = _list(args[0]), _list(args[1])
            return FListLit(left.elems + right.elems, left.elem_type)
        case "reverse":
            lst = _list(args[0])
            return FListLit(tuple(reversed(lst.elems)), lst.elem_type)
        case "zip":
            left, right = _list(args[0]), _list(args[1])
            return FListLit(
                tuple(FPair(a, b) for a, b in zip(left.elems, right.elems)),
                left.elem_type,
            )
        case "primEqInt":
            return FBoolLit(_int(args[0]) == _int(args[1]))
        case "ltInt":
            return FBoolLit(_int(args[0]) < _int(args[1]))
        case "leqInt":
            return FBoolLit(_int(args[0]) <= _int(args[1]))
        case "isEven":
            return FBoolLit(_int(args[0]) % 2 == 0)
        case "showInt":
            return FStrLit(str(_int(args[0])))
        case "not":
            return FBoolLit(not _bool(args[0]))
        case "and":
            return FBoolLit(_bool(args[0]) and _bool(args[1]))
        case "or":
            return FBoolLit(_bool(args[0]) or _bool(args[1]))
        case "primEqBool":
            return FBoolLit(_bool(args[0]) is _bool(args[1]))
        case "concat":
            return FStrLit(_str(args[0]) + _str(args[1]))
        case "primEqString":
            return FBoolLit(_str(args[0]) == _str(args[1]))
        case "intercalate":
            return FStrLit(_str(args[0]).join(_str(el) for el in _list(args[1]).elems))
        case "fst":
            return _pair(args[0]).first
        case "snd":
            return _pair(args[0]).second
        case "cons":
            tail = _list(args[1])
            return FListLit((args[0],) + tail.elems, tail.elem_type)
        case "isNil":
            return FBoolLit(not _list(args[0]).elems)
        case "head":
            elems = _list(args[0]).elems
            if not elems:
                raise EvalError("head of empty list")
            return elems[0]
        case "tail":
            lst = _list(args[0])
            if not lst.elems:
                raise EvalError("tail of empty list")
            return FListLit(lst.elems[1:], lst.elem_type)
        case "length":
            return FIntLit(len(_list(args[0]).elems))
        case "map":
            f, lst = args[0], _list(args[1])
            return FListLit(tuple(FApp(f, el) for el in lst.elems), lst.elem_type)
        case "foldr":
            f, z, lst = args[0], args[1], _list(args[2])
            if not lst.elems:
                return z
            rest = FListLit(lst.elems[1:], lst.elem_type)
            return FApp(FApp(f, lst.elems[0]), _call3("foldr", f, z, rest))
        case "filter":
            p, lst = args[0], _list(args[1])
            if not lst.elems:
                return lst
            v = lst.elems[0]
            rest = FListLit(lst.elems[1:], lst.elem_type)
            recur = _call2("filter", p, rest)
            return FIf(FApp(p, v), _cons(v, recur, lst.elem_type), recur)
        case "sortBy":
            lt, lst = args[0], _list(args[1])
            if not lst.elems:
                return lst
            v = lst.elems[0]
            rest = FListLit(lst.elems[1:], lst.elem_type)
            return _call3("insertBy#", lt, v, _call2("sortBy", lt, rest))
        case "insertBy#":
            lt, v, lst = args[0], args[1], _list(args[2])
            if not lst.elems:
                return FListLit((v,), lst.elem_type)
            w = lst.elems[0]
            rest = FListLit(lst.elems[1:], lst.elem_type)
            return FIf(
                FApp(FApp(lt, v), w),
                FListLit((v,) + lst.elems, lst.elem_type),
                _cons(w, _call3("insertBy#", lt, v, rest), lst.elem_type),
            )
    raise EvalError(f"no delta rule for primitive {name!r}")


#: internal small-step-only primitives (name -> arity)
_INTERNAL_PRIMS = {"insertBy#": 3}


def _prim_arity(name: str) -> int:
    if name in _INTERNAL_PRIMS:
        return _INTERNAL_PRIMS[name]
    return prim_spec(name).arity


def _call2(name: str, a: FExpr, b: FExpr) -> FExpr:
    return FApp(FApp(FPrim(name), a), b)


def _call3(name: str, a: FExpr, b: FExpr, c: FExpr) -> FExpr:
    return FApp(FApp(FApp(FPrim(name), a), b), c)


def _cons(v: FExpr, rest: FExpr, elem_type: FType) -> FExpr:
    return _call2("cons", v, rest)


def _int(e: FExpr) -> int:
    if isinstance(e, FIntLit):
        return e.value
    raise EvalError(f"expected an Int literal, got {e!r}")


def _bool(e: FExpr) -> bool:
    if isinstance(e, FBoolLit):
        return e.value
    raise EvalError(f"expected a Bool literal, got {e!r}")


def _str(e: FExpr) -> str:
    if isinstance(e, FStrLit):
        return e.value
    raise EvalError(f"expected a String literal, got {e!r}")


def _list(e: FExpr) -> FListLit:
    if isinstance(e, FListLit):
        return e
    raise EvalError(f"expected a list value, got {e!r}")


def _pair(e: FExpr) -> FPair:
    if isinstance(e, FPair):
        return e
    raise EvalError(f"expected a pair value, got {e!r}")


def to_python(value: FExpr):
    """Convert a System F *value* to the shared Python representation

    (for comparison with the big-step evaluator)."""
    match value:
        case FIntLit(v) | FStrLit(v):
            return v
        case FBoolLit(v):
            return v
        case FPair(a, b):
            return (to_python(a), to_python(b))
        case FListLit(elems, _):
            return tuple(to_python(el) for el in elems)
        case FRecord(iface, _, fields):
            from .eval import RecordValue

            return RecordValue(iface, tuple((n, to_python(f)) for n, f in fields))
        case _:
            return value  # functions / type abstractions stay syntactic


def trace(e: FExpr, max_steps: int = MAX_STEPS) -> Iterator[FExpr]:
    """Yield the reduction sequence ``e --> e1 --> ... --> V``."""
    current = e
    for _ in range(max_steps):
        yield current
        next_ = step(current)
        if next_ is None:
            return
        current = next_
    raise EvalError(f"no value after {max_steps} steps (diverging?)")


def run(e: FExpr, max_steps: int = MAX_STEPS) -> FExpr:
    """The reflexive-transitive closure: reduce to a value."""
    current = e
    for _ in range(max_steps):
        next_ = step(current)
        if next_ is None:
            return current
        current = next_
    raise EvalError(f"no value after {max_steps} steps (diverging?)")


def eval_smallstep(e: FExpr, max_steps: int = MAX_STEPS):
    """Reduce to a value and convert ground results to Python values,

    matching the big-step evaluator's representation for comparison."""
    return to_python(run(e, max_steps))
