"""Call-by-value evaluator for the extended System F target.

The paper defines the dynamic semantics of lambda_=> as elaboration
followed by System F's standard CBV reduction; this module supplies the
latter as an environment-based big-step interpreter (observationally the
reflexive-transitive closure of the paper's single-step relation, but
without the quadratic cost of substitution-based reduction).

Value representation (shared with the direct operational semantics so
results can be compared structurally in experiment T3):

* ``Int``/``Bool``/``String`` -- Python ``int``/``bool``/``str``;
* pairs -- 2-tuples of values;
* lists -- tuples of values;
* functions -- :class:`Closure`;
* type abstractions -- :class:`TypeClosure` (evaluation is type-erasing,
  but the closure still suspends its body, preserving CBV order);
* partially applied primitives -- :class:`PrimValue`;
* interface implementations -- :class:`RecordValue`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.prims import PrimSpec, prim_spec
from ..errors import EvalError
from .ast import (
    FApp,
    FBoolLit,
    FExpr,
    FFix,
    FIf,
    FIntLit,
    FLam,
    FListLit,
    FPair,
    FPrim,
    FProject,
    FRecord,
    FStrLit,
    FTyApp,
    FTyLam,
    FVar,
)

Env = Mapping[str, Any]


@dataclass(frozen=True)
class Closure:
    """A function value ``<\\x:T.E, env>``."""

    var: str
    body: FExpr
    env: Env

    def __repr__(self) -> str:
        return f"<closure \\{self.var}>"


@dataclass(frozen=True)
class TypeClosure:
    """A suspended type abstraction ``</\\a.E, env>``."""

    var: str
    body: FExpr
    env: Env

    def __repr__(self) -> str:
        return f"<tyclosure /\\{self.var}>"


@dataclass
class PrimValue:
    """A (possibly partially applied) primitive."""

    spec: PrimSpec
    args: tuple[Any, ...] = ()

    def __repr__(self) -> str:
        return f"<prim {self.spec.name}/{len(self.args)}:{self.spec.arity}>"


@dataclass(frozen=True)
class RecordValue:
    """An interface implementation value."""

    iface: str
    fields: tuple[tuple[str, Any], ...]

    def field(self, name: str) -> Any:
        for fname, value in self.fields:
            if fname == name:
                return value
        raise EvalError(f"record {self.iface} has no field {name!r}")

    def __repr__(self) -> str:
        return f"<{self.iface} record>"


class _Knot:
    """The placeholder a ``fix``-bound variable holds while its body runs.

    ``fix x:T.E`` is evaluated by *backpatching*: ``x`` is bound to an
    unforced knot, the body is evaluated, and the knot is then patched
    with the result.  Closures built during the body capture the same
    environment dictionary, so patching it ties the recursive loop.

    An unforced knot *flows* freely -- it may be passed to functions and
    stored in closure environments (that is exactly how recursive
    evidence reaches the rule body that closes the loop).  Only
    *demanding* it -- applying it, projecting a field, handing it to a
    primitive, branching on it -- before the body finishes means the fix
    is non-productive under call-by-value: a runtime error
    (:func:`_force`), matching the documented evaluation limitation of
    corecursive evidence.
    """

    __slots__ = ("value", "forced")

    def __init__(self) -> None:
        self.value: Any = None
        self.forced = False

    def __repr__(self) -> str:
        return "<knot forced>" if self.forced else "<knot unforced>"


def _force(value: Any) -> Any:
    """Dereference a fix knot at a demand site."""
    while isinstance(value, _Knot):
        if not value.forced or value.value is value:
            raise EvalError(
                "corecursive evidence demanded before its fix body "
                "finished (non-productive under CBV)"
            )
        value = value.value
    return value


def apply_value(fn: Any, arg: Any) -> Any:
    """Apply a function value to an argument value."""
    fn = _force(fn)
    if isinstance(fn, Closure):
        env = dict(fn.env)
        env[fn.var] = arg
        return feval(fn.body, env)
    if isinstance(fn, PrimValue):
        args = fn.args + (_force(arg),)
        if len(args) == fn.spec.arity:
            return fn.spec.run(list(args), apply_value)
        return PrimValue(fn.spec, args)
    raise EvalError(f"application of non-function value {fn!r}")


def feval(e: FExpr, env: Env | None = None) -> Any:
    """Evaluate a System F expression under ``env``."""
    if env is None:
        env = {}
    match e:
        case FIntLit(v):
            return v
        case FBoolLit(v):
            return v
        case FStrLit(v):
            return v
        case FVar(name):
            if name not in env:
                raise EvalError(f"unbound variable {name!r} at runtime")
            value = env[name]
            if isinstance(value, _Knot) and value.forced:
                return _force(value)
            return value  # an unforced knot flows until a demand site
        case FPrim(name):
            spec = prim_spec(name)
            if spec.arity == 0:  # pragma: no cover - no nullary prims today
                return spec.run([], apply_value)
            return PrimValue(spec)
        case FLam(var, _, body):
            return Closure(var, body, env)
        case FApp(fn, arg):
            fn_value = feval(fn, env)
            arg_value = feval(arg, env)
            return apply_value(fn_value, arg_value)
        case FTyLam(var, body):
            return TypeClosure(var, body, env)
        case FTyApp(expr, _):
            value = _force(feval(expr, env))
            if isinstance(value, TypeClosure):
                return feval(value.body, value.env)
            if isinstance(value, PrimValue):
                return value  # primitives are type-erased
            raise EvalError(f"type application of non-polymorphic value {value!r}")
        case FIf(cond, then, orelse):
            branch = then if _force(feval(cond, env)) else orelse
            return feval(branch, env)
        case FPair(first, second):
            return (feval(first, env), feval(second, env))
        case FListLit(elems, _):
            return tuple(feval(el, env) for el in elems)
        case FRecord(iface, _, fields):
            return RecordValue(iface, tuple((n, feval(f, env)) for n, f in fields))
        case FProject(expr, fname):
            value = _force(feval(expr, env))
            if not isinstance(value, RecordValue):
                raise EvalError(f"projection from non-record value {value!r}")
            return value.field(fname)
        case FFix(var, _, body):
            knot = _Knot()
            inner = dict(env)
            inner[var] = knot
            value = feval(body, inner)
            if value is knot:  # fix x:T. x -- denotes nothing
                raise EvalError(
                    f"corecursive evidence {var!r} demanded before its "
                    "fix body finished (non-productive under CBV)"
                )
            knot.value = value
            knot.forced = True
            inner[var] = value
            return value
    raise EvalError(f"cannot evaluate System F expression {e!r}")
