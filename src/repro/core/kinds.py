"""Kind (arity) checking for type well-formedness.

The paper's lambda_=> types are implicitly well-kinded; section 5.2 notes
that moving to full type-constructor polymorphism "basically needs a kind
system".  We implement the first-order slice of that system: every type
constructor has a fixed arity (a first-order kind ``* -> ... -> *``), and
every type appearing in a program -- annotations, rule types, queried
types, interface fields -- must be fully applied.

This catches malformed programs such as ``Eq Int Bool`` (arity 1 used at
2) or ``List`` (arity 1 used at 0) *before* they confuse matching, which
would otherwise treat them as distinct, never-matching constructors.

Builtin constructors: ``Int, Bool, String, Char, Unit`` (arity 0),
``List`` (1), ``Pair`` (2).  Interface declarations extend the
constructor table with their own name and parameter count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import TypecheckError
from .terms import InterfaceDecl, Signature
from .types import RuleType, TCon, TFun, TVar, Type

BUILTIN_ARITIES: dict[str, int] = {
    "Int": 0,
    "Bool": 0,
    "String": 0,
    "Char": 0,
    "Unit": 0,
    "List": 1,
    "Pair": 2,
}


class KindError(TypecheckError):
    """A type is not well-kinded (unknown or mis-applied constructor)."""

    code = "IC0204"


@dataclass(frozen=True)
class KindChecker:
    """Arity table derived from the builtins plus a signature."""

    arities: Mapping[str, int] = field(default_factory=lambda: dict(BUILTIN_ARITIES))

    @staticmethod
    def for_signature(
        signature: Signature, *, extra: Mapping[str, int] | None = None
    ) -> "KindChecker":
        table = dict(BUILTIN_ARITIES)
        if extra:
            table.update(extra)
        for decl in signature:
            if decl.name in table:
                raise KindError(
                    f"interface {decl.name!r} shadows an existing type constructor"
                )
            table[decl.name] = len(decl.tvars)
        return KindChecker(table)

    def check(self, tau: Type) -> None:
        """Raise :class:`KindError` unless ``tau`` is well-kinded."""
        match tau:
            case TVar(_):
                return
            case TCon(name, args):
                expected = self.arities.get(name)
                if expected is None:
                    raise KindError(f"unknown type constructor {name!r} in {tau}")
                if len(args) != expected:
                    raise KindError(
                        f"type constructor {name!r} expects {expected} "
                        f"argument(s), got {len(args)} in {tau}"
                    )
                for arg in args:
                    self.check(arg)
            case TFun(arg, res):
                self.check(arg)
                self.check(res)
            case RuleType():
                for rho in tau.context:
                    self.check(rho)
                self.check(tau.head)
            case _:
                raise KindError(f"not a type: {tau!r}")

    def well_kinded(self, tau: Type) -> bool:
        try:
            self.check(tau)
        except KindError:
            return False
        return True

    def check_interface(self, decl: InterfaceDecl) -> None:
        """Field types of an interface must be well-kinded (the interface

        itself is in scope for recursive interfaces)."""
        for _, tau in decl.fields:
            self.check(tau)

    def check_signature(self, signature: Signature) -> None:
        for decl in signature:
            self.check_interface(decl)


def check_kinds(
    taus: Iterable[Type],
    signature: Signature | None = None,
) -> None:
    """One-shot well-kindedness check for a batch of types."""
    checker = (
        KindChecker.for_signature(signature) if signature is not None else KindChecker()
    )
    for tau in taus:
        checker.check(tau)
