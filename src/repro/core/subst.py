"""Type substitutions (appendix "Substitution" of the extended report).

A substitution ``theta`` maps type-variable names to types.  Substitutions
act on types and on expressions (whose annotations embed types).  Binders
in rule types are respected: bound variables shadow the substitution, and
binders are freshened when a capture would otherwise occur -- the paper
assumes binders are "renamed apart", which freshening realises.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping

from .terms import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lam,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    StrLit,
    TyApp,
    Var,
)
from .types import RuleType, TCon, TFun, TVar, Type, ftv

Subst = Mapping[str, Type]

_fresh_counter = itertools.count()


def fresh_tvar(prefix: str = "t") -> str:
    """A globally fresh type-variable name."""
    return f"{prefix}%{next(_fresh_counter)}"


def subst_type(theta: Subst, tau: Type) -> Type:
    """Apply ``theta`` to ``tau``, avoiding capture under rule binders."""
    if not theta:
        return tau
    if theta.keys().isdisjoint(ftv(tau)):
        # No free variable of ``tau`` is in the substitution's domain:
        # the result is ``tau`` itself.  The cached free-variable set
        # makes this an O(domain) probe, and returning the interned node
        # unchanged preserves physical sharing for downstream fast paths.
        return tau
    match tau:
        case TVar(name):
            return theta.get(name, tau)
        case TCon(name, args):
            if not args:
                return tau
            return TCon(name, tuple(subst_type(theta, a) for a in args))
        case TFun(arg, res):
            return TFun(subst_type(theta, arg), subst_type(theta, res))
        case RuleType():
            inner, tvars = _enter_binder(theta, tau.tvars)
            renaming = {
                old: inner[old] for old in tau.tvars if old in inner and old not in theta
            }
            # _enter_binder folds the renaming into ``inner``; nothing extra
            # to do here -- the assert documents the invariant.
            del renaming
            return RuleType(
                tvars,
                tuple(subst_type(inner, rho) for rho in tau.context),
                subst_type(inner, tau.head),
            )
    raise TypeError(f"not a Type: {tau!r}")


def _enter_binder(
    theta: Subst, tvars: tuple[str, ...]
) -> tuple[dict[str, Type], tuple[str, ...]]:
    """Adjust ``theta`` for descending under binder ``tvars``.

    Bound variables are removed from the substitution (shadowing).  If a
    bound variable occurs free in the range of the remaining substitution,
    it is renamed to a fresh variable to avoid capture.
    """
    inner = {name: tau for name, tau in theta.items() if name not in tvars}
    if not inner:
        return inner, tvars
    range_ftv: set[str] = set()
    for tau in inner.values():
        range_ftv |= ftv(tau)
    new_tvars = []
    for name in tvars:
        if name in range_ftv:
            fresh = fresh_tvar(name.split("%")[0])
            inner[name] = TVar(fresh)
            new_tvars.append(fresh)
        else:
            new_tvars.append(name)
    return inner, tuple(new_tvars)


def subst_context(theta: Subst, context: Iterable[Type]) -> tuple[Type, ...]:
    """Apply ``theta`` pointwise to a context (re-canonicalised by callers
    that rebuild rule types; standalone contexts keep their order)."""
    return tuple(subst_type(theta, rho) for rho in context)


def compose(after: Subst, before: Subst) -> dict[str, Type]:
    """The substitution ``after . before`` (apply ``before`` first)."""
    out: dict[str, Type] = {name: subst_type(after, tau) for name, tau in before.items()}
    for name, tau in after.items():
        out.setdefault(name, tau)
    return out


def zip_subst(tvars: Iterable[str], taus: Iterable[Type]) -> dict[str, Type]:
    """Build ``[a-bar |-> tau-bar]``, checking arity."""
    tvars = tuple(tvars)
    taus = tuple(taus)
    if len(tvars) != len(taus):
        raise ValueError(
            f"type-argument arity mismatch: {len(tvars)} variables, {len(taus)} types"
        )
    return dict(zip(tvars, taus))


def subst_expr(theta: Subst, e: Expr) -> Expr:
    """Apply a type substitution to every type annotation inside ``e``.

    This is the appendix's substitution on expressions; it never touches
    term variables.  Rule abstractions shadow their quantified variables
    exactly as in :func:`subst_type`.
    """
    if not theta:
        return e
    match e:
        case IntLit() | BoolLit() | StrLit() | Var() | Prim():
            return e
        case Lam(var, var_type, body):
            return Lam(var, subst_type(theta, var_type), subst_expr(theta, body))
        case App(fn, arg):
            return App(subst_expr(theta, fn), subst_expr(theta, arg))
        case Query(rho):
            return Query(subst_type(theta, rho))
        case RuleAbs(rho, body):
            if isinstance(rho, RuleType):
                inner, tvars = _enter_binder(theta, rho.tvars)
                new_rho: Type = RuleType(
                    tvars,
                    tuple(subst_type(inner, r) for r in rho.context),
                    subst_type(inner, rho.head),
                )
                return RuleAbs(new_rho, subst_expr(inner, body))
            return RuleAbs(subst_type(theta, rho), subst_expr(theta, body))
        case TyApp(expr, type_args):
            return TyApp(
                subst_expr(theta, expr), tuple(subst_type(theta, t) for t in type_args)
            )
        case RuleApp(expr, args):
            return RuleApp(
                subst_expr(theta, expr),
                tuple((subst_expr(theta, a), subst_type(theta, rho)) for a, rho in args),
            )
        case If(cond, then, orelse):
            return If(subst_expr(theta, cond), subst_expr(theta, then), subst_expr(theta, orelse))
        case PairE(first, second):
            return PairE(subst_expr(theta, first), subst_expr(theta, second))
        case ListLit(elems, elem_type):
            return ListLit(
                tuple(subst_expr(theta, el) for el in elems),
                None if elem_type is None else subst_type(theta, elem_type),
            )
        case Record(iface, type_args, fields):
            return Record(
                iface,
                tuple(subst_type(theta, t) for t in type_args),
                tuple((name, subst_expr(theta, f)) for name, f in fields),
            )
        case Project(expr, field):
            return Project(subst_expr(theta, expr), field)
    raise TypeError(f"not an Expr: {e!r}")
