"""Type syntax of the implicit calculus (paper section 3.1).

The grammar is::

    (simple) types   tau ::= alpha | Int | tau1 -> tau2 | rho
    rule types       rho ::= forall a-bar . {rho-bar} => tau

We generalise the paper's single base type ``Int`` to arbitrary *type
constructors* ``TCon`` so that the examples (pairs, booleans, strings,
lists, interface types of the source language) are expressible without
touching the metatheory: a ``TCon`` behaves exactly like ``Int`` does in
the paper, and its arguments behave like the components of ``tau1 -> tau2``.

Representation choices (documented in DESIGN.md and docs/PERFORMANCE.md):

* A *degenerate* rule type -- no quantifiers and an empty context -- is not
  representable; ``rule(head=tau)`` simply returns ``tau``.  The paper
  identifies ``tau`` with ``forall . {} => tau`` via promotion, so this
  loses nothing and removes the unit-wrapper from the elaboration.
* Rule types compare and hash up to alpha-equivalence: bound variables are
  canonically numbered (de Bruijn indices) before comparison, and contexts
  are stored deduplicated and sorted by canonical key (the paper assumes
  contexts are lexicographically ordered so the type translation is
  unique).
* Types are **hash-consed**: every constructor call goes through a global
  intern table (weak-valued, so unused types are collectable), and each
  node caches its hash, free-variable set, size and context-free canonical
  key *once*.  Structurally equal simple types are therefore the *same*
  object, which makes unification's ``t1 is t2`` fast path, the
  occurs-check, environment fingerprinting and derivation-cache keys O(1)
  on shared structure instead of O(size) re-traversals.
"""

from __future__ import annotations

import threading
import weakref
from typing import Iterable, Iterator

#: Global hash-consing table.  Keys are structural identities (tag, class,
#: fields); values are the canonical instances, held weakly so the table
#: never pins garbage.  Child types inside a key are kept alive by the
#: interned parent itself (it references them through its fields), so the
#: strong key references add no retention beyond the parent's lifetime.
_INTERN: "weakref.WeakValueDictionary[tuple, Type]" = weakref.WeakValueDictionary()

#: Serializes the miss path of interning.  The lock-free ``get`` probe is
#: safe (a stale miss only means taking the slow path), but
#: ``WeakValueDictionary.setdefault`` is check-then-act in pure Python:
#: two racing threads could each observe a miss and each install *their
#: own* instance, breaking the "structurally equal implies identical"
#: invariant that the ``is`` fast paths in unification and the O(1)
#: cached-metadata reads rely on.  All constructors therefore intern
#: under this lock; concurrent constructions of the same type converge on
#: one canonical instance (see ``tests/core/test_thread_safety.py``).
_INTERN_LOCK = threading.Lock()

_EMPTY_FSET: frozenset[str] = frozenset()


class Type:
    """Base class of all implicit-calculus types.

    Instances are immutable, interned and carry cached structural
    metadata in slots (``_hash``, ``_ftv``, ``_size``, ``_key``); there is
    no instance ``__dict__``, so attribute injection is impossible.
    """

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .pretty import pretty_type

        return pretty_type(self)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"{type(self).__name__} is immutable; cannot set {name}"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError(
            f"{type(self).__name__} is immutable; cannot delete {name}"
        )


class TVar(Type):
    """A type variable ``alpha``."""

    __slots__ = ("name", "_hash", "_ftv", "_size", "_key", "__weakref__")
    __match_args__ = ("name",)

    name: str

    def __new__(cls, name: str) -> "TVar":
        key = ("tvar", cls, name)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "name", name)
        _set(self, "_ftv", frozenset((name,)))
        _set(self, "_size", 1)
        _set(self, "_key", ("fv", name))
        _set(self, "_hash", hash(("fv", name)))
        with _INTERN_LOCK:
            return _INTERN.setdefault(key, self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, TVar):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (type(self), (self.name,))

    def __repr__(self) -> str:
        return f"TVar({self.name!r})"


class TCon(Type):
    """A type constructor applied to arguments.

    ``TCon("Int")`` is the paper's ``Int``; ``TCon("Pair", (a, b))`` is
    ``a * b``; interface types of the source language such as ``Eq a``
    become ``TCon("Eq", (a,))``.
    """

    __slots__ = ("name", "args", "_hash", "_ftv", "_size", "_key", "__weakref__")
    __match_args__ = ("name", "args")

    name: str
    args: tuple[Type, ...]

    def __new__(cls, name: str, args: Iterable[Type] = ()) -> "TCon":
        if not isinstance(args, tuple):
            args = tuple(args)
        key = ("tcon", cls, name, args)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "name", name)
        _set(self, "args", args)
        if args:
            ftv_ = frozenset().union(*(a._ftv for a in args))
            size_ = 1 + sum(a._size for a in args)
            key_ = None  # assembled lazily from the children's keys
        else:
            ftv_ = _EMPTY_FSET
            size_ = 1
            key_ = ("con", name, ())
        _set(self, "_ftv", ftv_)
        _set(self, "_size", size_)
        _set(self, "_key", key_)
        _set(self, "_hash", hash(("con", name, args)))
        with _INTERN_LOCK:
            return _INTERN.setdefault(key, self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, TCon):
            return self.name == other.name and self.args == other.args
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (type(self), (self.name, self.args))

    def __repr__(self) -> str:
        if not self.args:
            return f"TCon({self.name!r})"
        return f"TCon({self.name!r}, {self.args!r})"


class TFun(Type):
    """A function type ``tau1 -> tau2``."""

    __slots__ = ("arg", "res", "_hash", "_ftv", "_size", "_key", "__weakref__")
    __match_args__ = ("arg", "res")

    arg: Type
    res: Type

    def __new__(cls, arg: Type, res: Type) -> "TFun":
        key = ("tfun", cls, arg, res)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "arg", arg)
        _set(self, "res", res)
        _set(self, "_ftv", arg._ftv | res._ftv)
        _set(self, "_size", 1 + arg._size + res._size)
        _set(self, "_key", None)
        _set(self, "_hash", hash(("fun", arg, res)))
        with _INTERN_LOCK:
            return _INTERN.setdefault(key, self)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, TFun):
            return self.arg == other.arg and self.res == other.res
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (type(self), (self.arg, self.res))

    def __repr__(self) -> str:
        return f"TFun({self.arg!r}, {self.res!r})"


class RuleType(Type):
    """A rule type ``forall a-bar . {rho-bar} => tau``.

    * ``tvars`` -- the universally quantified variables (ordered; the order
      matters for explicit type application ``e[tau-bar]``).
    * ``context`` -- the assumed implicit context, a canonically sorted,
      deduplicated tuple of types.  Entries are arbitrary types: a simple
      type ``Int`` stands for the promoted rule ``forall . {} => Int``
      exactly as in the paper's examples.
    * ``head`` -- the right-hand side ``tau`` (itself possibly a rule type,
      enabling higher-order rules).

    Instances are immutable, hashable, and equal up to alpha-renaming of
    ``tvars``.  Do not instantiate degenerate rule types directly; use the
    :func:`rule` smart constructor, which collapses them to their head.
    """

    __slots__ = ("tvars", "context", "head", "_hash", "_ftv", "_size", "_key", "__weakref__")
    __match_args__ = ()

    tvars: tuple[str, ...]
    context: tuple[Type, ...]
    head: Type

    def __new__(
        cls, tvars: Iterable[str], context: Iterable[Type], head: Type
    ) -> "RuleType":
        tvars = tuple(tvars)
        context = _canonical_context(context)
        if not tvars and not context:
            raise ValueError(
                "degenerate rule type (no quantifiers, empty context); "
                "use repro.core.types.rule(), which collapses it to its head"
            )
        if len(set(tvars)) != len(tvars):
            raise ValueError(f"duplicate quantified variables in {tvars}")
        key = ("rule", cls, tvars, context, head)
        self = _INTERN.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "tvars", tvars)
        _set(self, "context", context)
        _set(self, "head", head)
        ftv_ = head._ftv
        size_ = 1 + head._size
        for rho in context:
            ftv_ = ftv_ | rho._ftv
            size_ += rho._size
        _set(self, "_ftv", ftv_ - frozenset(tvars))
        _set(self, "_size", size_)
        _set(self, "_key", None)
        _set(self, "_hash", None)
        with _INTERN_LOCK:
            return _INTERN.setdefault(key, self)

    def canonical_key(self) -> tuple:
        """A hashable key identifying this type up to alpha-equivalence."""
        key = self._key
        if key is None:
            key = _canonical_key(self, {})
        return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RuleType):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self.canonical_key())
            object.__setattr__(self, "_hash", h)
        return h

    def __reduce__(self):
        return (type(self), (self.tvars, self.context, self.head))

    def __repr__(self) -> str:
        return f"RuleType({self.tvars!r}, {self.context!r}, {self.head!r})"

    def __str__(self) -> str:
        from .pretty import pretty_type

        return pretty_type(self)


def rule(
    head: Type,
    context: Iterable[Type] = (),
    tvars: Iterable[str] = (),
) -> Type:
    """Smart constructor for rule types.

    Collapses the degenerate case: ``rule(Int)`` is just ``Int`` (the paper's
    promotion ``tau  ~  forall . {} => tau`` read right-to-left).
    """
    tvars = tuple(tvars)
    context = tuple(context)
    if not tvars and not context:
        return head
    return RuleType(tvars, context, head)


def promote(tau: Type) -> tuple[tuple[str, ...], tuple[Type, ...], Type]:
    """View any type as a rule type ``(tvars, context, head)``.

    Simple types promote to ``((), (), tau)``; rule types decompose.
    This is the promotion used by the unified resolution rule ``TyRes``.
    """
    if isinstance(tau, RuleType):
        return tau.tvars, tau.context, tau.head
    return (), (), tau


# ---------------------------------------------------------------------------
# Common base types used throughout the library and the examples.
# ---------------------------------------------------------------------------

INT = TCon("Int")
BOOL = TCon("Bool")
STRING = TCon("String")
CHAR = TCon("Char")
UNIT = TCon("Unit")


def pair(a: Type, b: Type) -> TCon:
    """The product type ``a * b`` used pervasively in the paper's examples."""
    return TCon("Pair", (a, b))


def list_of(a: Type) -> TCon:
    """The list type ``[a]`` used by the source-language examples."""
    return TCon("List", (a,))


def fun(*taus: Type) -> Type:
    """Right-associated function type: ``fun(a, b, c)`` is ``a -> (b -> c)``."""
    if not taus:
        raise ValueError("fun() needs at least one type")
    result = taus[-1]
    for tau in reversed(taus[:-1]):
        result = TFun(tau, result)
    return result


# ---------------------------------------------------------------------------
# Free variables, subterms, sizes -- all O(1) off the interned metadata.
# ---------------------------------------------------------------------------


def ftv(tau: Type) -> frozenset[str]:
    """Free type variables of ``tau`` (quantified variables are bound).

    Cached per interned node: computed once bottom-up at construction, so
    this is an O(1) slot read even for very deep types.
    """
    try:
        return tau._ftv
    except AttributeError:
        raise TypeError(f"not a Type: {tau!r}") from None


def subterms(tau: Type) -> Iterator[Type]:
    """Pre-order traversal of all subterms of ``tau`` (including itself).

    Iterative (explicit work stack), so deeply nested types (~thousands of
    constructors) do not hit the interpreter recursion limit.
    """
    stack: list[Type] = [tau]
    while stack:
        t = stack.pop()
        yield t
        if isinstance(t, TVar):
            continue
        if isinstance(t, TCon):
            for a in reversed(t.args):
                stack.append(a)
        elif isinstance(t, TFun):
            stack.append(t.res)
            stack.append(t.arg)
        elif isinstance(t, RuleType):
            stack.append(t.head)
            for r in reversed(t.context):
                stack.append(r)
        else:
            raise TypeError(f"not a Type: {t!r}")


def type_size(tau: Type) -> int:
    """Number of constructors/variables in ``tau`` (termination measure).

    Cached per interned node (see :func:`ftv`)."""
    try:
        return tau._size
    except AttributeError:
        raise TypeError(f"not a Type: {tau!r}") from None


# ---------------------------------------------------------------------------
# Head-constructor symbols (first-argument indexing).
# ---------------------------------------------------------------------------


def head_symbol(tau: Type, flex: Iterable[str] = _EMPTY_FSET) -> tuple | None:
    """The rigid head-constructor symbol of ``tau``, or ``None`` if flexible.

    One-way matching of a rule head against a query can only succeed when
    the two root constructors agree exactly (unification has no theory:
    distinct constructors, arities, binder counts or context lengths never
    unify), *unless* the head is a variable in ``flex`` (the rule's
    quantified variables), which matches anything.  This is the classic
    first-argument index key of logic programming; the environment and the
    logic engine bucket their rules/clauses by it (see docs/PERFORMANCE.md).
    """
    if isinstance(tau, TVar):
        return None if tau.name in flex else ("var", tau.name)
    if isinstance(tau, TCon):
        return ("con", tau.name, len(tau.args))
    if isinstance(tau, TFun):
        return ("fun",)
    if isinstance(tau, RuleType):
        return ("rule", len(tau.tvars), len(tau.context))
    raise TypeError(f"not a Type: {tau!r}")


# ---------------------------------------------------------------------------
# Canonical (alpha-invariant) keys.
# ---------------------------------------------------------------------------


def _canonical_key(tau: Type, bound: dict[str, int], depth: int | None = None) -> tuple:
    """Structural key with bound variables replaced by de Bruijn indices.

    ``bound`` maps in-scope quantified names to the *level* (count of
    binder variables introduced before them); an occurrence at binder
    depth ``d`` is keyed ``("bv", d - 1 - level)`` -- its de Bruijn index.
    Indices (unlike levels) are independent of the enclosing context, so
    any subterm whose free variables are disjoint from ``bound`` has the
    same key it would have in isolation; such subterms reuse (and
    populate) the per-node cached key instead of being re-traversed.

    The traversal is an explicit work stack, not recursion, so canonical
    keys of very deep types do not overflow the interpreter stack.
    """
    if depth is None:
        depth = len(bound)
    out: list[tuple] = []
    # Work items:  ("eval", type, bound, depth, dest)
    #              ("con"|"fun"|"rule", node, parts, dest, cacheable[, nctx])
    stack: list[tuple] = [("eval", tau, bound, depth, out)]
    while stack:
        item = stack.pop()
        op = item[0]
        if op == "eval":
            _, t, b, d, dest = item
            if isinstance(t, TVar):
                level = b.get(t.name)
                dest.append(("fv", t.name) if level is None else ("bv", d - 1 - level))
                continue
            cacheable = not b or b.keys().isdisjoint(t._ftv)
            if cacheable:
                k = t._key
                if k is not None:
                    dest.append(k)
                    continue
            if isinstance(t, TCon):
                parts: list[tuple] = []
                stack.append(("con", t, parts, dest, cacheable))
                for a in reversed(t.args):
                    stack.append(("eval", a, b, d, parts))
            elif isinstance(t, TFun):
                parts = []
                stack.append(("fun", t, parts, dest, cacheable))
                stack.append(("eval", t.res, b, d, parts))
                stack.append(("eval", t.arg, b, d, parts))
            elif isinstance(t, RuleType):
                inner = dict(b)
                for i, name in enumerate(t.tvars):
                    inner[name] = d + i
                d2 = d + len(t.tvars)
                parts = []
                stack.append(("rule", t, parts, dest, cacheable, len(t.context)))
                stack.append(("eval", t.head, inner, d2, parts))
                for r in reversed(t.context):
                    stack.append(("eval", r, inner, d2, parts))
            else:
                raise TypeError(f"not a Type: {t!r}")
        else:
            if op == "con":
                _, t, parts, dest, cacheable = item
                key = ("con", t.name, tuple(parts))
            elif op == "fun":
                _, t, parts, dest, cacheable = item
                key = ("fun", parts[0], parts[1])
            else:  # "rule"
                _, t, parts, dest, cacheable, nctx = item
                key = ("rule", len(t.tvars), tuple(parts[:nctx]), parts[nctx])
            if cacheable and t._key is None:
                object.__setattr__(t, "_key", key)
            dest.append(key)
    return out[0]


def canonical_key(tau: Type) -> tuple:
    """Public alpha-invariant key for any type (cached per interned node)."""
    try:
        key = tau._key
    except AttributeError:
        raise TypeError(f"not a Type: {tau!r}") from None
    if key is None:
        key = _canonical_key(tau, {})
    return key


def _canonical_context(context: Iterable[Type]) -> tuple[Type, ...]:
    """Deduplicate and sort a context by canonical key.

    The paper assumes "the types in a context are lexicographically
    ordered" so that the type translation ``|.|`` is unique; we realise
    that by sorting on the (total, deterministic) canonical key.
    """
    seen: dict[tuple, Type] = {}
    for rho in context:
        seen.setdefault(canonical_key(rho), rho)
    return tuple(seen[k] for k in sorted(seen, key=_key_sort_token))


def _key_sort_token(key: tuple) -> str:
    return repr(key)


def types_alpha_eq(a: Type, b: Type) -> bool:
    """Alpha-equivalence on arbitrary types."""
    return a is b or canonical_key(a) == canonical_key(b)


def context_contains(context: Iterable[Type], rho: Type) -> bool:
    """Set membership up to alpha-equivalence."""
    key = canonical_key(rho)
    return any(canonical_key(r) == key for r in context)


def context_difference(left: Iterable[Type], right: Iterable[Type]) -> tuple[Type, ...]:
    """``left - right`` as alpha-equivalence sets, preserving left's order.

    This is the operation at the heart of *partial resolution*: the part
    ``rho-bar' - rho-bar`` of a matched rule's context that the query does
    not assume and must therefore be resolved recursively.
    """
    right_keys = {canonical_key(r) for r in right}
    return tuple(r for r in left if canonical_key(r) not in right_keys)
