"""Type syntax of the implicit calculus (paper section 3.1).

The grammar is::

    (simple) types   tau ::= alpha | Int | tau1 -> tau2 | rho
    rule types       rho ::= forall a-bar . {rho-bar} => tau

We generalise the paper's single base type ``Int`` to arbitrary *type
constructors* ``TCon`` so that the examples (pairs, booleans, strings,
lists, interface types of the source language) are expressible without
touching the metatheory: a ``TCon`` behaves exactly like ``Int`` does in
the paper, and its arguments behave like the components of ``tau1 -> tau2``.

Two representation choices (documented in DESIGN.md):

* A *degenerate* rule type -- no quantifiers and an empty context -- is not
  representable; ``rule(head=tau)`` simply returns ``tau``.  The paper
  identifies ``tau`` with ``forall . {} => tau`` via promotion, so this
  loses nothing and removes the unit-wrapper from the elaboration.
* Rule types compare and hash up to alpha-equivalence: bound variables are
  canonically renamed before comparison, and contexts are stored
  deduplicated and sorted by canonical key (the paper assumes contexts are
  lexicographically ordered so the type translation is unique).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


class Type:
    """Base class of all implicit-calculus types."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .pretty import pretty_type

        return pretty_type(self)


@dataclass(frozen=True, repr=False)
class TVar(Type):
    """A type variable ``alpha``."""

    name: str

    def __repr__(self) -> str:
        return f"TVar({self.name!r})"


@dataclass(frozen=True, repr=False)
class TCon(Type):
    """A type constructor applied to arguments.

    ``TCon("Int")`` is the paper's ``Int``; ``TCon("Pair", (a, b))`` is
    ``a * b``; interface types of the source language such as ``Eq a``
    become ``TCon("Eq", (a,))``.
    """

    name: str
    args: tuple[Type, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    def __repr__(self) -> str:
        if not self.args:
            return f"TCon({self.name!r})"
        return f"TCon({self.name!r}, {self.args!r})"


@dataclass(frozen=True, repr=False)
class TFun(Type):
    """A function type ``tau1 -> tau2``."""

    arg: Type
    res: Type

    def __repr__(self) -> str:
        return f"TFun({self.arg!r}, {self.res!r})"


class RuleType(Type):
    """A rule type ``forall a-bar . {rho-bar} => tau``.

    * ``tvars`` -- the universally quantified variables (ordered; the order
      matters for explicit type application ``e[tau-bar]``).
    * ``context`` -- the assumed implicit context, a canonically sorted,
      deduplicated tuple of types.  Entries are arbitrary types: a simple
      type ``Int`` stands for the promoted rule ``forall . {} => Int``
      exactly as in the paper's examples.
    * ``head`` -- the right-hand side ``tau`` (itself possibly a rule type,
      enabling higher-order rules).

    Instances are immutable, hashable, and equal up to alpha-renaming of
    ``tvars``.  Do not instantiate degenerate rule types directly; use the
    :func:`rule` smart constructor, which collapses them to their head.
    """

    __slots__ = ("tvars", "context", "head", "_canon")

    tvars: tuple[str, ...]
    context: tuple[Type, ...]
    head: Type

    def __init__(self, tvars: Iterable[str], context: Iterable[Type], head: Type):
        tvars = tuple(tvars)
        context = _canonical_context(context)
        if not tvars and not context:
            raise ValueError(
                "degenerate rule type (no quantifiers, empty context); "
                "use repro.core.types.rule(), which collapses it to its head"
            )
        if len(set(tvars)) != len(tvars):
            raise ValueError(f"duplicate quantified variables in {tvars}")
        object.__setattr__(self, "tvars", tvars)
        object.__setattr__(self, "context", context)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "_canon", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"RuleType is immutable; cannot set {name}")

    def canonical_key(self) -> tuple:
        """A hashable key identifying this type up to alpha-equivalence."""
        key = object.__getattribute__(self, "_canon")
        if key is None:
            key = _canonical_key(self, {})
            object.__setattr__(self, "_canon", key)
        return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, RuleType):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:
        return f"RuleType({self.tvars!r}, {self.context!r}, {self.head!r})"

    def __str__(self) -> str:
        from .pretty import pretty_type

        return pretty_type(self)


def rule(
    head: Type,
    context: Iterable[Type] = (),
    tvars: Iterable[str] = (),
) -> Type:
    """Smart constructor for rule types.

    Collapses the degenerate case: ``rule(Int)`` is just ``Int`` (the paper's
    promotion ``tau  ~  forall . {} => tau`` read right-to-left).
    """
    tvars = tuple(tvars)
    context = tuple(context)
    if not tvars and not context:
        return head
    return RuleType(tvars, context, head)


def promote(tau: Type) -> tuple[tuple[str, ...], tuple[Type, ...], Type]:
    """View any type as a rule type ``(tvars, context, head)``.

    Simple types promote to ``((), (), tau)``; rule types decompose.
    This is the promotion used by the unified resolution rule ``TyRes``.
    """
    if isinstance(tau, RuleType):
        return tau.tvars, tau.context, tau.head
    return (), (), tau


# ---------------------------------------------------------------------------
# Common base types used throughout the library and the examples.
# ---------------------------------------------------------------------------

INT = TCon("Int")
BOOL = TCon("Bool")
STRING = TCon("String")
CHAR = TCon("Char")
UNIT = TCon("Unit")


def pair(a: Type, b: Type) -> TCon:
    """The product type ``a * b`` used pervasively in the paper's examples."""
    return TCon("Pair", (a, b))


def list_of(a: Type) -> TCon:
    """The list type ``[a]`` used by the source-language examples."""
    return TCon("List", (a,))


def fun(*taus: Type) -> Type:
    """Right-associated function type: ``fun(a, b, c)`` is ``a -> (b -> c)``."""
    if not taus:
        raise ValueError("fun() needs at least one type")
    result = taus[-1]
    for tau in reversed(taus[:-1]):
        result = TFun(tau, result)
    return result


# ---------------------------------------------------------------------------
# Free variables, subterms, canonical keys.
# ---------------------------------------------------------------------------


def ftv(tau: Type) -> frozenset[str]:
    """Free type variables of ``tau`` (quantified variables are bound)."""
    match tau:
        case TVar(name):
            return frozenset((name,))
        case TCon(_, args):
            out: frozenset[str] = frozenset()
            for arg in args:
                out |= ftv(arg)
            return out
        case TFun(arg, res):
            return ftv(arg) | ftv(res)
        case RuleType():
            out = ftv(tau.head)
            for rho in tau.context:
                out |= ftv(rho)
            return out - frozenset(tau.tvars)
    raise TypeError(f"not a Type: {tau!r}")


def subterms(tau: Type) -> Iterator[Type]:
    """Pre-order traversal of all subterms of ``tau`` (including itself)."""
    yield tau
    match tau:
        case TVar(_):
            return
        case TCon(_, args):
            for arg in args:
                yield from subterms(arg)
        case TFun(arg, res):
            yield from subterms(arg)
            yield from subterms(res)
        case RuleType():
            for rho in tau.context:
                yield from subterms(rho)
            yield from subterms(tau.head)


def type_size(tau: Type) -> int:
    """Number of constructors/variables in ``tau`` (termination measure)."""
    return sum(1 for _ in subterms(tau))


def _canonical_key(tau: Type, bound: dict[str, int]) -> tuple:
    """Structural key with bound variables replaced by de-Bruijn-ish levels."""
    match tau:
        case TVar(name):
            if name in bound:
                return ("bv", bound[name])
            return ("fv", name)
        case TCon(name, args):
            return ("con", name, tuple(_canonical_key(a, bound) for a in args))
        case TFun(arg, res):
            return ("fun", _canonical_key(arg, bound), _canonical_key(res, bound))
        case RuleType():
            inner = dict(bound)
            base = len(bound)
            for i, name in enumerate(tau.tvars):
                inner[name] = base + i
            ctx = tuple(_canonical_key(rho, inner) for rho in tau.context)
            return ("rule", len(tau.tvars), ctx, _canonical_key(tau.head, inner))
    raise TypeError(f"not a Type: {tau!r}")


def canonical_key(tau: Type) -> tuple:
    """Public alpha-invariant key for any type."""
    if isinstance(tau, RuleType):
        return tau.canonical_key()
    return _canonical_key(tau, {})


def _canonical_context(context: Iterable[Type]) -> tuple[Type, ...]:
    """Deduplicate and sort a context by canonical key.

    The paper assumes "the types in a context are lexicographically
    ordered" so that the type translation ``|.|`` is unique; we realise
    that by sorting on the (total, deterministic) canonical key.
    """
    seen: dict[tuple, Type] = {}
    for rho in context:
        seen.setdefault(canonical_key(rho), rho)
    return tuple(seen[k] for k in sorted(seen, key=_key_sort_token))


def _key_sort_token(key: tuple) -> str:
    return repr(key)


def types_alpha_eq(a: Type, b: Type) -> bool:
    """Alpha-equivalence on arbitrary types."""
    return canonical_key(a) == canonical_key(b)


def context_contains(context: Iterable[Type], rho: Type) -> bool:
    """Set membership up to alpha-equivalence."""
    key = canonical_key(rho)
    return any(canonical_key(r) == key for r in context)


def context_difference(left: Iterable[Type], right: Iterable[Type]) -> tuple[Type, ...]:
    """``left - right`` as alpha-equivalence sets, preserving left's order.

    This is the operation at the heart of *partial resolution*: the part
    ``rho-bar' - rho-bar`` of a matched rule's context that the query does
    not assume and must therefore be resolved recursively.
    """
    right_keys = {canonical_key(r) for r in right}
    return tuple(r for r in left if canonical_key(r) not in right_keys)
