"""Built-in primitives shared by every stage of the pipeline.

The paper keeps lambda_=> small and says "in examples we use additional
syntax such as built-in integer operators and boolean literals"; this
module is that additional syntax.  Each primitive has

* a (possibly polymorphic) implicit-calculus type -- polymorphic
  primitives are rule types with an empty context, so they are
  instantiated with ordinary type application ``e[tau-bar]``;
* a curried arity; and
* a Python denotation acting on runtime values.  Both evaluators (the
  direct big-step semantics and the System F target) share the same
  ground-value representation (Python ``int``/``bool``/``str``, pairs as
  2-tuples, lists as Python tuples), so one denotation serves both.
  Higher-order primitives receive an ``apply`` callback so they stay
  agnostic of each evaluator's closure representation.

The denotations deliberately avoid Python-level partiality: ``div`` by
zero raises :class:`EvalError` rather than ``ZeroDivisionError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import EvalError
from .types import BOOL, INT, STRING, TVar, Type, fun, list_of, pair, rule

Apply = Callable[[Any, Any], Any]


@dataclass(frozen=True)
class PrimSpec:
    """Signature and denotation of one primitive."""

    name: str
    rho: Type
    arity: int
    impl: Callable[..., Any]
    higher_order: bool = False

    def run(self, args: list[Any], apply: Apply) -> Any:
        if self.higher_order:
            return self.impl(apply, *args)
        return self.impl(*args)


_A = TVar("a")
_B = TVar("b")


def _div(x: int, y: int) -> int:
    if y == 0:
        raise EvalError("division by zero")
    return x // y


def _mod(x: int, y: int) -> int:
    if y == 0:
        raise EvalError("modulo by zero")
    return x % y


def _zip(xs: tuple, ys: tuple) -> tuple:
    return tuple(zip(xs, ys))


def _head(xs: tuple) -> Any:
    if not xs:
        raise EvalError("head of empty list")
    return xs[0]


def _tail(xs: tuple) -> tuple:
    if not xs:
        raise EvalError("tail of empty list")
    return xs[1:]


def _map(apply: Apply, f: Any, xs: tuple) -> tuple:
    return tuple(apply(f, x) for x in xs)


def _foldr(apply: Apply, f: Any, z: Any, xs: tuple) -> Any:
    out = z
    for x in reversed(xs):
        out = apply(apply(f, x), out)
    return out


def _filter(apply: Apply, p: Any, xs: tuple) -> tuple:
    return tuple(x for x in xs if apply(p, x))


def _sort_by(apply: Apply, lt: Any, xs: tuple) -> tuple:
    """Stable insertion sort driven by a less-than predicate.

    The paper's introductory ``sort [a] : (a -> a -> Bool) -> List a ->
    List a``; the object language has no recursion, so ordering
    algorithms are primitives (like ``intercalate``)."""
    out: list[Any] = []
    for x in xs:
        index = len(out)
        for i, y in enumerate(out):
            if apply(apply(lt, x), y):
                index = i
                break
        out.insert(index, x)
    return tuple(out)


def _specs() -> dict[str, PrimSpec]:
    mono = [
        # Integer arithmetic and comparison.
        ("add", fun(INT, INT, INT), 2, lambda x, y: x + y),
        ("sub", fun(INT, INT, INT), 2, lambda x, y: x - y),
        ("mul", fun(INT, INT, INT), 2, lambda x, y: x * y),
        ("div", fun(INT, INT, INT), 2, _div),
        ("negate", fun(INT, INT), 1, lambda x: -x),
        ("mod", fun(INT, INT, INT), 2, _mod),
        ("primEqInt", fun(INT, INT, BOOL), 2, lambda x, y: x == y),
        ("ltInt", fun(INT, INT, BOOL), 2, lambda x, y: x < y),
        ("leqInt", fun(INT, INT, BOOL), 2, lambda x, y: x <= y),
        ("gtInt", fun(INT, INT, BOOL), 2, lambda x, y: x > y),
        ("geqInt", fun(INT, INT, BOOL), 2, lambda x, y: x >= y),
        ("isEven", fun(INT, BOOL), 1, lambda x: x % 2 == 0),
        ("showInt", fun(INT, STRING), 1, lambda x: str(x)),
        ("showBool", fun(BOOL, STRING), 1, lambda x: "True" if x else "False"),
        ("sum", fun(list_of(INT), INT), 1, lambda xs: sum(xs)),
        # Booleans.
        ("not", fun(BOOL, BOOL), 1, lambda x: not x),
        ("and", fun(BOOL, BOOL, BOOL), 2, lambda x, y: x and y),
        ("or", fun(BOOL, BOOL, BOOL), 2, lambda x, y: x or y),
        ("primEqBool", fun(BOOL, BOOL, BOOL), 2, lambda x, y: x == y),
        # Strings.
        ("concat", fun(STRING, STRING, STRING), 2, lambda x, y: x + y),
        ("primEqString", fun(STRING, STRING, BOOL), 2, lambda x, y: x == y),
        (
            "intercalate",
            fun(STRING, list_of(STRING), STRING),
            2,
            lambda sep, xs: sep.join(xs),
        ),
    ]
    poly = [
        # Pairs.
        ("fst", ("a", "b"), fun(pair(_A, _B), _A), 1, lambda p: p[0], False),
        ("snd", ("a", "b"), fun(pair(_A, _B), _B), 1, lambda p: p[1], False),
        # Lists.
        ("cons", ("a",), fun(_A, list_of(_A), list_of(_A)), 2,
         lambda x, xs: (x,) + xs, False),
        ("isNil", ("a",), fun(list_of(_A), BOOL), 1, lambda xs: not xs, False),
        ("head", ("a",), fun(list_of(_A), _A), 1, _head, False),
        ("tail", ("a",), fun(list_of(_A), list_of(_A)), 1, _tail, False),
        ("length", ("a",), fun(list_of(_A), INT), 1, lambda xs: len(xs), False),
        (
            "append",
            ("a",),
            fun(list_of(_A), list_of(_A), list_of(_A)),
            2,
            lambda xs, ys: xs + ys,
            False,
        ),
        ("reverse", ("a",), fun(list_of(_A), list_of(_A)), 1,
         lambda xs: tuple(reversed(xs)), False),
        (
            "zip",
            ("a", "b"),
            fun(list_of(_A), list_of(_B), list_of(pair(_A, _B))),
            2,
            _zip,
            False,
        ),
        ("map", ("a", "b"), fun(fun(_A, _B), list_of(_A), list_of(_B)), 2, _map, True),
        (
            "filter",
            ("a",),
            fun(fun(_A, BOOL), list_of(_A), list_of(_A)),
            2,
            _filter,
            True,
        ),
        (
            "sortBy",
            ("a",),
            fun(fun(_A, _A, BOOL), list_of(_A), list_of(_A)),
            2,
            _sort_by,
            True,
        ),
        (
            "foldr",
            ("a", "b"),
            fun(fun(_A, _B, _B), _B, list_of(_A), _B),
            3,
            _foldr,
            True,
        ),
    ]
    table: dict[str, PrimSpec] = {}
    for name, rho, arity, impl in mono:
        table[name] = PrimSpec(name, rho, arity, impl)
    for name, tvars, tau, arity, impl, higher in poly:
        table[name] = PrimSpec(
            name, rule(tau, context=(), tvars=tvars), arity, impl, higher_order=higher
        )
    return table


PRIMS: dict[str, PrimSpec] = _specs()


def prim_spec(name: str) -> PrimSpec:
    spec = PRIMS.get(name)
    if spec is None:
        raise KeyError(f"unknown primitive {name!r}")
    return spec


def prim_type(name: str) -> Type:
    return prim_spec(name).rho
