"""Unification and one-way matching (appendix "Unification").

Resolution's lookup needs *one-way matching*: find ``theta`` with support
in a rule's quantified variables such that ``theta tau' = tau`` (the
queried type is not instantiated).  The well-formedness conditions
(``no_overlap``, ``distinct``, the coherence predicates) additionally need
*two-way unifiability* checks: does any substitution identify two types?

Both are provided by one engine parameterised over the set of *flexible*
variables; every other variable is a rigid constant.  Rule types unify per
the appendix: equal numbers of quantified variables (renamed to common
fresh rigid names), unifiable heads, and contexts that pair off
element-by-element (a small backtracking search; contexts are canonically
sorted and tiny in practice).
"""

from __future__ import annotations

from typing import Iterable

from ..obs import record_unify
from .subst import fresh_tvar, subst_type
from .types import RuleType, TCon, TFun, TVar, Type, ftv, types_alpha_eq


class _Fail(Exception):
    """Internal non-unifiability signal (never escapes this module)."""


def match_type(
    pattern: Type, target: Type, meta: Iterable[str]
) -> dict[str, Type] | None:
    """One-way matching: ``theta`` with ``dom(theta) <= meta`` such that
    ``theta pattern`` is alpha-equal to ``target``; ``None`` if impossible.

    This is the paper's ``unify(tau', tau; a-bar)`` as used by environment
    lookup: only the rule's quantified variables may be instantiated.
    """
    record_unify()
    meta = frozenset(meta)
    theta: dict[str, Type] = {}
    try:
        _unify(pattern, target, meta, theta, frozenset())
    except _Fail:
        return None
    resolved = _resolve_triangular(theta)
    return {name: tau for name, tau in resolved.items() if name in meta}


def mgu(t1: Type, t2: Type, flex: Iterable[str] | None = None) -> dict[str, Type] | None:
    """Most-general unifier of ``t1`` and ``t2``.

    ``flex`` restricts which variables may be instantiated; ``None`` means
    every free variable of either side is flexible (the reading used by the
    overlap and coherence conditions, which quantify over *all*
    substitutions).
    """
    record_unify()
    if flex is None:
        flex = ftv(t1) | ftv(t2)
    theta: dict[str, Type] = {}
    try:
        _unify(t1, t2, frozenset(flex), theta, frozenset())
    except _Fail:
        return None
    return _resolve_triangular(theta)


def unifiable(t1: Type, t2: Type, flex: Iterable[str] | None = None) -> bool:
    """Whether some substitution identifies ``t1`` and ``t2``."""
    return mgu(t1, t2, flex) is not None


def matches(pattern: Type, target: Type, meta: Iterable[str]) -> bool:
    """The paper's ``rho > tau``: the pattern head instantiates to target."""
    return match_type(pattern, target, meta) is not None


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _resolve_triangular(theta: dict[str, Type]) -> dict[str, Type]:
    """Fully apply a triangular substitution to itself.

    The engine binds variables one at a time, so a binding's right-hand
    side may mention later-bound variables; the occurs check guarantees
    the chase terminates.  The result is idempotent, as callers (and the
    paper's ``theta tau' = tau``) expect.
    """

    out = dict(theta)
    for _ in range(len(out)):
        changed = False
        for name, tau in out.items():
            resolved = subst_type(out, tau)
            if resolved is not tau and not types_alpha_eq(resolved, tau):
                out[name] = resolved
                changed = True
        if not changed:
            break
    return out


def _walk(tau: Type, theta: dict[str, Type]) -> Type:
    """Chase variable bindings at the root."""
    while isinstance(tau, TVar) and tau.name in theta:
        tau = theta[tau.name]
    return tau


def _occurs(name: str, tau: Type, theta: dict[str, Type]) -> bool:
    tau = _walk(tau, theta)
    # Cached-ftv prune: ``name`` occurs in ``tau`` (under ``theta``) only
    # if it is free in ``tau`` directly, or reachable through a binding of
    # some other free variable of ``tau``.  ``name`` itself is never in
    # ``theta`` (the engine checks before binding), so a direct free
    # occurrence is a real occurrence, and a ``tau`` whose free variables
    # avoid both ``name`` and ``theta``'s domain cannot contain it at all.
    # This keeps the occurs-check O(1) on ground subterms of any depth.
    fvs = ftv(tau)
    if name in fvs:
        return True
    if not theta or theta.keys().isdisjoint(fvs):
        return False
    match tau:
        case TVar(_):
            return False
        case TCon(_, args):
            return any(_occurs(name, a, theta) for a in args)
        case TFun(arg, res):
            return _occurs(name, arg, theta) or _occurs(name, res, theta)
        case RuleType():
            return any(_occurs(name, r, theta) for r in tau.context) or _occurs(
                name, tau.head, theta
            )
    raise TypeError(f"not a Type: {tau!r}")


def _mentions_locals(tau: Type, theta: dict[str, Type], locals_: frozenset[str]) -> bool:
    """Whether ``tau`` (after walking) mentions a binder-local rigid name."""
    if not locals_:
        return False
    tau = _walk(tau, theta)
    # Cached-ftv prune (see _occurs): locals are rigid skolems, never in
    # ``theta``'s domain, so a direct free occurrence is definitive and a
    # term whose free variables avoid both sets cannot reach one.
    fvs = ftv(tau)
    if not fvs.isdisjoint(locals_):
        return True
    if not theta or theta.keys().isdisjoint(fvs):
        return False
    match tau:
        case TVar(_):
            return False
        case TCon(_, args):
            return any(_mentions_locals(a, theta, locals_) for a in args)
        case TFun(arg, res):
            return _mentions_locals(arg, theta, locals_) or _mentions_locals(
                res, theta, locals_
            )
        case RuleType():
            return any(
                _mentions_locals(r, theta, locals_) for r in tau.context
            ) or _mentions_locals(tau.head, theta, locals_)
    raise TypeError(f"not a Type: {tau!r}")


def _bind(name: str, tau: Type, theta: dict[str, Type], locals_: frozenset[str]) -> None:
    if _occurs(name, tau, theta):
        raise _Fail
    if _mentions_locals(tau, theta, locals_):
        raise _Fail  # scope escape: binder-local name would leak outward
    theta[name] = tau


def _unify(
    t1: Type,
    t2: Type,
    flex: frozenset[str],
    theta: dict[str, Type],
    locals_: frozenset[str],
) -> None:
    t1 = _walk(t1, theta)
    t2 = _walk(t2, theta)
    if t1 is t2:
        # Physically shared subterms are trivially equal; this keeps
        # matching linear on DAG-shaped types (e.g. Pair^n Int built by
        # doubling), which resolution produces routinely.
        return
    if isinstance(t1, TVar) and isinstance(t2, TVar) and t1.name == t2.name:
        return
    if isinstance(t1, TVar) and t1.name in flex:
        _bind(t1.name, t2, theta, locals_)
        return
    if isinstance(t2, TVar) and t2.name in flex:
        _bind(t2.name, t1, theta, locals_)
        return
    match t1, t2:
        case (TVar(_), TVar(_)):
            raise _Fail  # distinct rigid variables
        case (TCon(n1, a1), TCon(n2, a2)):
            if n1 != n2 or len(a1) != len(a2):
                raise _Fail
            for x, y in zip(a1, a2):
                _unify(x, y, flex, theta, locals_)
        case (TFun(p1, r1), TFun(p2, r2)):
            _unify(p1, p2, flex, theta, locals_)
            _unify(r1, r2, flex, theta, locals_)
        case (RuleType(), RuleType()):
            _unify_rules(t1, t2, flex, theta, locals_)
        case _:
            raise _Fail


def _unify_rules(
    r1: RuleType,
    r2: RuleType,
    flex: frozenset[str],
    theta: dict[str, Type],
    locals_: frozenset[str],
) -> None:
    if len(r1.tvars) != len(r2.tvars):
        raise _Fail
    if len(r1.context) != len(r2.context):
        raise _Fail
    skolems = tuple(fresh_tvar("sk") for _ in r1.tvars)
    ren1 = {old: TVar(new) for old, new in zip(r1.tvars, skolems)}
    ren2 = {old: TVar(new) for old, new in zip(r2.tvars, skolems)}
    inner_locals = locals_ | frozenset(skolems)
    _unify(
        subst_type(ren1, r1.head), subst_type(ren2, r2.head), flex, theta, inner_locals
    )
    ctx1 = [subst_type(ren1, rho) for rho in r1.context]
    ctx2 = [subst_type(ren2, rho) for rho in r2.context]
    _unify_context_sets(ctx1, ctx2, flex, theta, inner_locals)


def _unify_context_sets(
    ctx1: list[Type],
    ctx2: list[Type],
    flex: frozenset[str],
    theta: dict[str, Type],
    locals_: frozenset[str],
) -> None:
    """Pair off context elements (appendix set-unification, backtracking)."""
    if not ctx1:
        if ctx2:
            raise _Fail
        return
    head, rest = ctx1[0], ctx1[1:]
    for i, candidate in enumerate(ctx2):
        snapshot = dict(theta)
        try:
            _unify(head, candidate, flex, theta, locals_)
            _unify_context_sets(rest, ctx2[:i] + ctx2[i + 1 :], flex, theta, locals_)
            return
        except _Fail:
            theta.clear()
            theta.update(snapshot)
    raise _Fail


def apply_match(theta: dict[str, Type], tau: Type) -> Type:
    """Apply a matching substitution (re-exported convenience)."""
    return subst_type(theta, tau)


def check_match(pattern: Type, target: Type, theta: dict[str, Type]) -> bool:
    """Sanity helper used by tests: ``theta pattern`` alpha-equals target."""
    return types_alpha_eq(subst_type(theta, pattern), target)
