"""A small construction DSL for lambda_=> programs.

Tests and examples build paper programs with these helpers instead of raw
AST constructors; in particular :func:`implicit` is the paper's
``implicit e-bar : rho-bar in e`` sugar::

    implicit e-bar:rho-bar in e1 : tau
        ==  rule({rho-bar} => tau, e1) with e-bar:rho-bar
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .prims import prim_spec
from .terms import App, Expr, IntLit, Lam, Prim, Query, RuleAbs, RuleApp, TyApp, Var
from .types import TVar, Type, rule

Binding = "Expr | tuple[Expr, Type]"


def tv(name: str) -> TVar:
    return TVar(name)


def var(name: str) -> Var:
    return Var(name)


def app(fn: Expr, *args: Expr) -> Expr:
    """Left-nested application ``fn a1 ... an``."""
    out = fn
    for arg in args:
        out = App(out, arg)
    return out


def lam(bindings: Sequence[tuple[str, Type]], body: Expr) -> Expr:
    """Multi-argument lambda ``\\x1:t1 ... xn:tn. body``."""
    out = body
    for name, tau in reversed(bindings):
        out = Lam(name, tau, out)
    return out


def let_(name: str, tau: Type, bound: Expr, body: Expr) -> Expr:
    """Monomorphic let as the usual beta-redex sugar."""
    return App(Lam(name, tau, body), bound)


def ask(rho: Type) -> Query:
    """The query ``?rho`` (simple types promote inside resolution)."""
    return Query(rho)


def crule(rho: Type, body: Expr) -> RuleAbs:
    """A rule abstraction ``|rho|.body``."""
    return RuleAbs(rho, body)


def with_(expr: Expr, bindings: Iterable[Binding]) -> RuleApp:
    """Rule application ``expr with e-bar:rho-bar``.

    Bindings may be ``(expr, rho)`` pairs or bare *closed* expressions,
    whose rule type is then inferred with an empty environment.
    """
    return RuleApp(expr, tuple(_annotate(b) for b in bindings))


def implicit(
    bindings: Iterable[Binding],
    body: Expr,
    result_type: Type,
) -> Expr:
    """The paper's ``implicit e-bar in body : result_type`` sugar."""
    annotated = tuple(_annotate(b) for b in bindings)
    context = tuple(rho for _, rho in annotated)
    return RuleApp(RuleAbs(rule(result_type, context), body), annotated)


def _annotate(binding: Binding) -> tuple[Expr, Type]:
    if isinstance(binding, tuple):
        return binding
    from .typecheck import TypeChecker

    return binding, TypeChecker().check_program(binding)


def prim(name: str, *type_args: Type) -> Expr:
    """A primitive, instantiated if type arguments are supplied."""
    spec = prim_spec(name)  # raises KeyError early for typos
    expr: Expr = Prim(spec.name)
    if type_args:
        expr = TyApp(expr, tuple(type_args))
    return expr


def call_prim(name: str, *args: Expr, type_args: Sequence[Type] = ()) -> Expr:
    """Fully applied primitive call."""
    return app(prim(name, *type_args), *args)


# Frequently used arithmetic/boolean shorthands ------------------------------


def add(a: Expr, b: Expr) -> Expr:
    return call_prim("add", a, b)


def inc(a: Expr) -> Expr:
    return add(a, IntLit(1))


def neg(a: Expr) -> Expr:
    return call_prim("not", a)


def eq_int(a: Expr, b: Expr) -> Expr:
    return call_prim("primEqInt", a, b)
