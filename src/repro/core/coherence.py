"""Coherence conditions (extended report section 3.4 and the companion

material "Resolution with Overlapping Rules").

A program is *coherent* iff every query has a single, lexically nearest
match that is the same statically and at runtime: runtime type
instantiation must not change which rule wins.  The classic failure::

    let f : forall b. b -> b =
      implicit { \\x.x      : forall a. a -> a } in
      implicit { \\n.n + 1  : Int -> Int       } in
        ?(b -> b)

Statically the nearest match is ``forall a. a -> a``; but when ``b`` is
instantiated to ``Int`` at runtime, ``Int -> Int`` becomes the nearest
match.  The paper's static system rejects such programs.

This module provides:

* the companion's ruleset predicates -- :func:`nonoverlap`,
  :func:`distinct`, :func:`unique_instances`, :func:`has_most_specific`;
* the definitional lookup-stability check :func:`lookup_stable`
  (``theta(Delta(tau)) = (theta Delta)(theta tau)``), used by the
  metatheory property tests; and
* a conservative static analysis :func:`check_query_coherence` that
  rejects queries whose winner could change under instantiation of the
  query's free type variables.

The static analysis treats *all* free variables of the query head as
runtime-instantiable, which is sound but conservative: the companion
material itself notes that e.g. ``forall a b. {a, b} => a * b`` is
rejected by such checking even though many of its uses are safe, and
therefore defers uniqueness checks to rule-application sites (where our
type checker enforces them via its duplicate-evidence check).  We expose
the analysis as an opt-in (``strict_coherence``) on the type checker and
elaborator, matching that design discussion.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..errors import CoherenceError, NoMatchingRuleError, OverlappingRulesError
from .env import (
    FrameIndex,
    ImplicitEnv,
    OverlapPolicy,
    RuleEntry,
    compiling_enabled,
    indexing_enabled,
)
from .subst import Subst, fresh_tvar, subst_type
from .types import (
    RuleType,
    TVar,
    Type,
    ftv,
    head_symbol,
    promote,
    types_alpha_eq,
)
from .unify import mgu, unifiable


# ---------------------------------------------------------------------------
# Companion predicates on rule sets
# ---------------------------------------------------------------------------


def nonoverlap(rho1: Type, rho2: Type) -> bool:
    """``forall theta. theta rho1 != theta rho2`` -- no substitution can

    make the two rules produce values of the same type.  Since a rule
    produces values of its *head* type, this compares heads with the
    quantified variables of both rules renamed apart and substitutable
    (e.g. ``forall a. a -> Int`` and ``forall b. Int -> b`` overlap at
    ``Int -> Int``)."""
    h1 = _freshened_head(rho1)
    h2 = _freshened_head(rho2)
    if _rigid_syms_differ(h1, h2):
        return True
    return not unifiable(h1, h2)


def distinct(context1: Iterable[Type], context2: Iterable[Type]) -> bool:
    """Pairwise :func:`nonoverlap` across two rule sets."""
    context2 = tuple(context2)
    return all(nonoverlap(r1, r2) for r1 in context1 for r2 in context2)


def distinct_context(context: Iterable[Type]) -> bool:
    """Pairwise :func:`nonoverlap` within one rule set (``distinct_rs``)."""
    return all(nonoverlap(r1, r2) for r1, r2 in combinations(tuple(context), 2))


def unique_instances(context: Iterable[Type]) -> bool:
    """The companion's *uniqueness of instances*: no substitution can make

    the heads of two distinct rules coincide (static *and* dynamic
    uniqueness: ``{alpha, Int}`` fails because ``alpha`` may become
    ``Int`` at runtime)."""
    heads = [_freshened_head(rho) for rho in context]
    return all(
        _rigid_syms_differ(h1, h2) or not unifiable(h1, h2)
        for (h1, h2) in combinations(heads, 2)
    )


def has_most_specific(context: Iterable[Type]) -> bool:
    """The companion's *existence of a most specific rule* condition.

    For every pair of rules whose heads can both match a common instance
    (their *meet*), overlap resolution by specificity must not get stuck:
    looking the meet up in the rule set under the MOST_SPECIFIC policy
    must select a unique winner.  ``{forall a. a -> Int, forall a. Int ->
    a}`` fails (at ``Int -> Int`` neither wins); adding the rule
    ``Int -> Int`` itself repairs the set.
    """
    context = tuple(context)
    frame = tuple(RuleEntry(rho) for rho in context)
    compiled = None
    if compiling_enabled():
        from .compile_env import compiled_frame_for

        compiled = compiled_frame_for(frame)
    index = FrameIndex(frame) if compiled is None and indexing_enabled() else None
    heads = [_freshened_head(rho) for rho in context]
    for h1, h2 in combinations(heads, 2):
        if _rigid_syms_differ(h1, h2):
            continue
        theta = mgu(h1, h2)
        if theta is None:
            continue
        meet = subst_type(theta, h1)
        try:
            result = env_frame_lookup(
                frame, meet, OverlapPolicy.MOST_SPECIFIC, index, compiled
            )
        except OverlappingRulesError:
            return False
        if result is None:  # pragma: no cover - meet always matches
            return False
    return True


def _freshened_head(rho: Type) -> Type:
    """The rule head with quantified variables renamed apart."""
    tvars, _, head = promote(rho)
    renaming = {old: TVar(fresh_tvar(old.split("%")[0])) for old in tvars}
    return subst_type(renaming, head)


def _rigid_syms_differ(h1: Type, h2: Type) -> bool:
    """Head-symbol prune for two-way unifiability of freshened heads.

    The predicates above quantify over *all* substitutions, so every free
    variable of either head is flexible -- which is exactly the reading
    :func:`head_symbol` gives when the flex set is the head's own free
    variables.  Two heads with distinct *rigid* root symbols cannot be
    identified by any substitution, so :func:`unifiable` need not run.
    """
    s1 = head_symbol(h1, ftv(h1))
    if s1 is None:
        return False
    s2 = head_symbol(h2, ftv(h2))
    return s2 is not None and s1 != s2


# ---------------------------------------------------------------------------
# Lookup stability (the ``coherent`` predicate of the proofs appendix)
# ---------------------------------------------------------------------------


def subst_env(theta: Subst, env: ImplicitEnv) -> ImplicitEnv:
    """Apply a substitution to every rule type of an environment."""
    out = ImplicitEnv.empty()
    for frame in env.frames():
        out = out.push(
            type(entry)(subst_type(theta, entry.rho), entry.payload)
            for entry in frame
        )
    return out


def lookup_stable(
    env: ImplicitEnv,
    tau: Type,
    theta: Subst,
    policy: OverlapPolicy = OverlapPolicy.REJECT,
) -> bool:
    """Definitional check: ``theta(Delta(tau)) == (theta Delta)(theta tau)``.

    Both lookups must succeed and agree (as instantiated rule types), or
    both must fail, for the environment to be coherent at ``tau`` under
    ``theta``.
    """
    theta_env = subst_env(theta, env)
    try:
        before = env.lookup(tau, policy)
        before_position = _entry_position(env, before.entry)
        before_rho = subst_type(theta, _result_rho(before))
        before_failed = False
    except (NoMatchingRuleError, OverlappingRulesError):
        before_failed = True
    try:
        after = theta_env.lookup(subst_type(theta, tau), policy)
        after_position = _entry_position(theta_env, after.entry)
        after_rho = _result_rho(after)
        after_failed = False
    except (NoMatchingRuleError, OverlappingRulesError):
        after_failed = True
    if before_failed or after_failed:
        # Failure before instantiation and success after is benign for
        # stability tests; only a *changed* success is incoherent.
        return before_failed
    # The *same rule* (by position in the stack) must win, and yield the
    # same instantiated result type.
    return before_position == after_position and types_alpha_eq(
        before_rho, after_rho
    )


def _entry_position(env: ImplicitEnv, entry) -> tuple[int, int]:
    for i, frame in enumerate(env.frames()):
        for j, candidate in enumerate(frame):
            if candidate is entry:
                return (i, j)
    raise AssertionError("lookup returned an entry not present in the environment")


def _result_rho(result) -> Type:
    from .types import rule

    return rule(result.head, result.context)


# ---------------------------------------------------------------------------
# Conservative static coherence analysis for queries
# ---------------------------------------------------------------------------


def check_query_coherence(
    env: ImplicitEnv, rho: Type, policy: OverlapPolicy = OverlapPolicy.REJECT
) -> None:
    """Reject queries whose winning rule could change at runtime.

    The query head's free type variables stand for types chosen at
    runtime.  The check finds the static winner, then scans for rules
    that *could* match some instantiation of the head (two-way
    unifiability) and would take priority over the winner -- i.e. they
    sit in a strictly nearer rule set, or in the winner's own rule set.
    Any such rule makes the program incoherent.
    """
    _, _, head = promote(rho)
    frames = env.frames()
    winner_frame, winner_entry = _winning_entry(env, head, policy)
    if winner_frame is None:
        return  # unresolvable; resolution itself reports the error
    for depth in range(len(frames) - 1, winner_frame - 1, -1):
        for entry in frames[depth]:
            if depth == winner_frame and entry is winner_entry:
                continue
            candidate = _freshened_head(entry.rho)
            if unifiable(candidate, head):
                raise CoherenceError(
                    f"query {rho} is incoherent: its static match "
                    f"{winner_entry.rho} can be shadowed at runtime by "
                    f"{entry.rho} under some instantiation of "
                    f"{sorted(ftv(head)) or 'its rule variables'}"
                )


def _winning_entry(env: ImplicitEnv, head: Type, policy: OverlapPolicy):
    frames = env.frames()
    compiled_frames = None
    if compiling_enabled():
        from .compile_env import compiled_env_for

        compiled_frames = compiled_env_for(env).frames
    indexes = (
        env.indexes() if compiled_frames is None and indexing_enabled() else None
    )
    for depth in range(len(frames) - 1, -1, -1):
        try:
            result = env_frame_lookup(
                frames[depth],
                head,
                policy,
                indexes[depth] if indexes is not None else None,
                compiled_frames[depth] if compiled_frames is not None else None,
            )
        except OverlappingRulesError:
            raise
        if result is not None:
            return depth, result.entry
    return None, None


def env_frame_lookup(
    frame,
    head: Type,
    policy: OverlapPolicy,
    index: FrameIndex | None = None,
    compiled=None,
):
    """Lookup restricted to one rule set (internal helper).

    ``compiled``, when given, is the frame's
    :class:`~repro.core.compile_env.CompiledFrame` and replaces the
    interpreted scan entirely (same matches, same entry order).
    """
    from .env import _frame_matches, _most_specific

    if compiled is not None:
        matched = compiled.matches(head)
        if not matched:
            return None
        if len(matched) > 1:
            if policy is OverlapPolicy.REJECT:
                raise OverlappingRulesError(
                    f"query {head} matches {len(matched)} rules in one rule set"
                )
            return compiled.most_specific(matched, head)
        return matched[0][1]
    matches = _frame_matches(frame, head, index)
    if not matches:
        return None
    if len(matches) > 1:
        if policy is OverlapPolicy.REJECT:
            raise OverlappingRulesError(
                f"query {head} matches {len(matches)} rules in one rule set"
            )
        return _most_specific(matches, head)
    return matches[0]
