"""Pretty printers for types and expressions.

The output mirrors the paper's notation as closely as plain text allows::

    forall a . {a} => (a, a)      a rule type
    ?Int                          a query
    rule({Int, Bool} => Int, e)   a rule abstraction
    e with {1 : Int}              a rule application
"""

from __future__ import annotations

from .terms import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    Lam,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    StrLit,
    TyApp,
    Var,
)
from .types import RuleType, TCon, TFun, TVar, Type

_ATOM, _APP, _ARROW = 0, 1, 2


def pretty_type(tau: Type, prec: int = _ARROW) -> str:
    match tau:
        case TVar(name):
            return name
        case TCon("Pair", (a, b)):
            return f"({pretty_type(a)}, {pretty_type(b)})"
        case TCon("List", (a,)):
            return f"[{pretty_type(a)}]"
        case TCon(name, ()):
            return name
        case TCon(name, args):
            text = name + " " + " ".join(pretty_type(a, _ATOM) for a in args)
            return _paren(text, prec < _APP)
        case TFun(arg, res):
            text = f"{pretty_type(arg, _APP)} -> {pretty_type(res, _ARROW)}"
            return _paren(text, prec < _ARROW)
        case RuleType():
            quant = f"forall {' '.join(tau.tvars)} . " if tau.tvars else ""
            ctx = ""
            if tau.context:
                ctx = "{" + ", ".join(pretty_type(r) for r in tau.context) + "} => "
            text = f"{quant}{ctx}{pretty_type(tau.head, _ARROW)}"
            return _paren(text, prec < _ARROW)
    raise TypeError(f"not a Type: {tau!r}")


def _paren(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def pretty_expr(e: Expr, prec: int = 10) -> str:
    match e:
        case IntLit(value):
            return str(value)
        case BoolLit(value):
            return "True" if value else "False"
        case StrLit(value):
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
            return f'"{escaped}"'
        case Var(name):
            return name
        case Prim(name):
            return f"#{name}"
        case Lam(var, var_type, body):
            text = f"\\{var} : {pretty_type(var_type)} . {pretty_expr(body)}"
            return _paren(text, prec < 10)
        case App(fn, arg):
            text = f"{pretty_expr(fn, 2)} {pretty_expr(arg, 1)}"
            return _paren(text, prec < 2)
        case Query(rho):
            return f"?({pretty_type(rho)})"
        case RuleAbs(rho, body):
            return f"rule({pretty_type(rho)}, {pretty_expr(body)})"
        case TyApp(expr, type_args):
            args = ", ".join(pretty_type(t) for t in type_args)
            return f"{pretty_expr(expr, 1)}[{args}]"
        case RuleApp(expr, args):
            bindings = ", ".join(
                f"{pretty_expr(a)} : {pretty_type(rho)}" for a, rho in args
            )
            text = f"{pretty_expr(expr, 1)} with {{{bindings}}}"
            return _paren(text, prec < 3)
        case If(cond, then, orelse):
            text = (
                f"if {pretty_expr(cond)} then {pretty_expr(then)} "
                f"else {pretty_expr(orelse)}"
            )
            return _paren(text, prec < 10)
        case PairE(first, second):
            return f"({pretty_expr(first)}, {pretty_expr(second)})"
        case ListLit(elems, _):
            return "[" + ", ".join(pretty_expr(el) for el in elems) + "]"
        case Record(iface, type_args, fields):
            targs = ""
            if type_args:
                targs = "[" + ", ".join(pretty_type(t) for t in type_args) + "]"
            body = ", ".join(f"{name} = {pretty_expr(f)}" for name, f in fields)
            return f"{iface}{targs} {{{body}}}"
        case Project(expr, field):
            return f"{pretty_expr(expr, 1)}.{field}"
    raise TypeError(f"not an Expr: {e!r}")
