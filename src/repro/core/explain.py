"""Human-readable explanations of resolution derivations.

Resolution failures in implicit systems are notoriously hard to debug
(the paper's motivation for keeping resolution predictable).  This module
renders a :class:`Derivation` as an indented proof tree and, on failure,
explains *why* each frame of the environment did not apply -- the sort of
diagnostics a production implementation of the calculus would ship.

Example output::

    ?(Int, Int)
    └─ by rule  forall a . {a} => (a, a)   [a := Int]
       └─ ?Int
          └─ by rule  Int
"""

from __future__ import annotations

from ..errors import ResolutionError
from .env import ImplicitEnv, OverlapPolicy
from .pretty import pretty_type
from .resolution import (
    ByAssumption,
    ByResolution,
    Derivation,
    ResolutionStrategy,
    Resolver,
)
from .types import Type, promote
from .unify import match_type
from .subst import fresh_tvar, subst_type
from .types import TVar


def explain_derivation(derivation: Derivation, indent: int = 0) -> str:
    """Render a successful derivation as an indented proof tree."""
    lines: list[str] = []
    _render(derivation, indent, lines)
    return "\n".join(lines)


def _render(derivation: Derivation, depth: int, lines: list[str]) -> None:
    pad = "   " * depth
    lines.append(f"{pad}?{pretty_type(derivation.query)}")
    rule_text = pretty_type(derivation.lookup.entry.rho)
    tvars, _, _ = promote(derivation.lookup.entry.rho)
    binding = ""
    if tvars:
        pairs = ", ".join(
            f"{name} := {pretty_type(t)}"
            for name, t in zip(tvars, derivation.lookup.type_args)
        )
        binding = f"   [{pairs}]"
    lines.append(f"{pad}└─ by rule  {rule_text}{binding}")
    for premise in derivation.premises:
        if isinstance(premise, ByAssumption):
            lines.append(
                f"{pad}   ├─ {pretty_type(premise.token.rho)}  (assumed by the query)"
            )
        elif isinstance(premise, ByResolution):
            _render(premise.derivation, depth + 1, lines)


def explain_failure(
    env: ImplicitEnv,
    rho: Type,
    *,
    policy: OverlapPolicy = OverlapPolicy.REJECT,
) -> str:
    """Diagnose why ``rho`` does not resolve against ``env``.

    Walks the stack innermost-out, reporting for each frame whether its
    rules' heads match, and for the first head match, which recursive
    premise failed.  ``policy`` selects the overlap policy the probe
    resolver runs under -- a query that fails under ``REJECT`` (two
    matching heads in one frame) may resolve under ``MOST_SPECIFIC``.
    """
    resolver = Resolver(policy=policy)
    try:
        resolver.resolve(env, rho)
    except ResolutionError as failure:
        pass
    else:
        return f"?{pretty_type(rho)} resolves fine; nothing to explain"

    _, context, head = promote(rho)
    lines = [f"?{pretty_type(rho)} failed to resolve:"]
    frames = env.frames()
    if not frames:
        lines.append("  the implicit environment is empty")
        return "\n".join(lines)
    for level, frame in enumerate(reversed(frames)):
        lines.append(f"  scope {level} (innermost = 0):")
        any_match = False
        for entry in frame:
            tvars, entry_ctx, entry_head = promote(entry.rho)
            fresh = tuple(fresh_tvar(v.split("%")[0]) for v in tvars)
            renaming = {old: TVar(new) for old, new in zip(tvars, fresh)}
            theta = match_type(subst_type(renaming, entry_head), head, fresh)
            if theta is None:
                lines.append(
                    f"    - {pretty_type(entry.rho)}: head does not match"
                )
                continue
            any_match = True
            inst_ctx = tuple(
                subst_type(theta, subst_type(renaming, r)) for r in entry_ctx
            )
            from .types import context_difference

            remainder = context_difference(inst_ctx, context)
            if not remainder:
                lines.append(
                    f"    - {pretty_type(entry.rho)}: matches with empty remainder "
                    "(failure must come from overlap or ambiguity)"
                )
                continue
            lines.append(f"    - {pretty_type(entry.rho)}: head matches; needs:")
            for premise in remainder:
                ok = Resolver(policy=policy).resolvable(env, premise)
                status = "ok" if ok else "UNRESOLVABLE"
                lines.append(f"        {pretty_type(premise)}  [{status}]")
        if any_match:
            lines.append(
                "    (resolution commits to this scope's match; deeper scopes "
                "are not tried -- the calculus does not backtrack)"
            )
            break
    return "\n".join(lines)


def explain_query(
    env: ImplicitEnv,
    rho: Type,
    *,
    policy: OverlapPolicy = OverlapPolicy.REJECT,
    strategy: ResolutionStrategy = ResolutionStrategy.SYNTACTIC,
) -> str:
    """Resolve and explain in one call (success or failure)."""
    resolver = Resolver(policy=policy, strategy=strategy)
    try:
        derivation = resolver.resolve(env, rho)
    except ResolutionError:
        return explain_failure(env, rho, policy=policy)
    return explain_derivation(derivation)
