"""Compiled environment matchers: discrimination tries + per-rule code.

Theorem 1 reads an implicit environment as a logic program; PR 2's
head-constructor indexing exploited only the root symbol of that
reading.  This module compiles a *frozen* environment the rest of the
way down, in the classic term-indexing style (discrimination tries over
flattened term skeletons, as in the Handbook of Automated Reasoning's
indexing chapter and Kiselyov et al.'s typeclasses-as-logic-programming
line):

* every frame gets a :class:`DiscriminationTrie` over the preorder token
  stream of its rule heads -- one walk over the hash-consed query term
  selects the candidate rule positions (a *superset* of the true matches,
  in entry order; completeness is what the differential oracles pin);
* every rule gets a specialized matcher replacing generic unification:

  - **ground** heads (no quantified variable, no embedded rule type)
    match by *pointer equality* -- hash-consing makes structural equality
    of simple types object identity, so the whole match is one ``is``;
  - **extracting** heads (rigid skeleton around quantified variables,
    no embedded rule type) run a precompiled instruction sequence that
    checks the skeleton and binds each variable's subterm directly --
    no freshening, no substitution, no occurs checks.  The instantiated
    head *is* the query (interning again), and contexts that mention no
    variable are returned as precomputed constants;
  - **generic** heads (any head embedding a :class:`RuleType`) fall back
    to the interpreted ``_try_match``.  Rule-type matching involves
    context *set* unification, whose equality is coarser than canonical
    keys, so only the general engine reproduces it exactly; the
    ``compiled_fallbacks`` counter makes the fallback rate observable.

Frame compilation additionally memoizes the MOST_SPECIFIC overlap
decision per *set of matched positions* (with a pairwise
``_more_specific`` memo underneath), and whole match scans per interned
query object -- sound because frames are immutable, types are interned
and matching is deterministic.  These memos, not the trie walk, are
where most of the steady-state wide-environment speedup comes from; the
trie is what keeps the *first* scan of each query sublinear in the
frame width.

Artifacts are memoized like ``program_of_env``: compiled frames by frame
identity (frames are immutable tuples shared structurally by ``push``,
so an environment and everything pushed on top of it share compiled
frames), compiled environments by ``(fingerprint, payload witness)``
with an identity check on the frame stack, so a fingerprint can never
alias entries with different payload objects -- lookup results must
return the *very same* :class:`RuleEntry` objects the interpreted path
returns.  Push/pop never sees a stale artifact because environments and
frames are immutable: popping resumes the parent environment, whose
compiled form is keyed by its own fingerprint.

Everything is toggled like PR 2's indexing: globally via
:func:`set_compiling` / :func:`compiling` (CLI ``--compile``), per call
via ``use_compiled``.  The compiled and interpreted paths are observably
equivalent -- same results, same failures, byte-identical messages --
which ``tests/property/test_property_compile.py`` and the ``compiled``
fuzz oracle enforce.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import (
    AmbiguousRuleTypeError,
    NoMatchingRuleError,
    OverlappingRulesError,
)
from ..obs import record_compiled
from .env import (
    ImplicitEnv,
    LookupResult,
    OverlapPolicy,
    RuleEntry,
    _more_specific,
    _try_match,
    compiling,
    compiling_enabled,
    set_compiling,
)
from .subst import subst_type
from .types import (
    RuleType,
    TCon,
    TFun,
    TVar,
    Type,
    canonical_key,
    ftv,
    subterms,
)
from .unify import _Fail, _unify

__all__ = [
    "DiscriminationTrie",
    "CompiledFrame",
    "CompiledEnv",
    "compiled_frame_for",
    "compiled_env_for",
    "clear_compiled_cache",
    "compiling",
    "compiling_enabled",
    "set_compiling",
    "set_trie_corruption",
    "corrupt_tries",
    "type_pattern_tokens",
    "type_query_tokens",
    "token_extents",
]

_EMPTY_FSET: frozenset[str] = frozenset()


# ---------------------------------------------------------------------------
# Fault injection (the `compiled` fuzz oracle's trie-corruption arm).
# ---------------------------------------------------------------------------

_CORRUPT = False


def set_trie_corruption(enabled: bool) -> bool:
    """Drop the last trie candidate of every scan (simulating a missing
    trie edge, i.e. an *incomplete* index); returns the previous value."""
    global _CORRUPT
    previous = _CORRUPT
    _CORRUPT = bool(enabled)
    return previous


@contextmanager
def corrupt_tries() -> Iterator[None]:
    """Scoped :func:`set_trie_corruption` (test-only)."""
    previous = set_trie_corruption(True)
    try:
        yield
    finally:
        set_trie_corruption(previous)


# ---------------------------------------------------------------------------
# Token streams: types flattened to preorder (token, arity) sequences.
# ---------------------------------------------------------------------------

#: A pattern position standing for "any one subterm" (a quantified
#: variable, or an embedded rule type matched conservatively).
STAR = None


def type_pattern_tokens(head: Type, bound: frozenset[str]) -> list:
    """The trie insertion stream of a rule head.

    Each element is either :data:`STAR` or a ``(token, arity)`` pair;
    quantified variables and embedded rule types become stars (one-subterm
    wildcards), everything else its exact constructor token.
    """
    out: list = []
    stack: list[Type] = [head]
    while stack:
        t = stack.pop()
        if isinstance(t, TVar):
            out.append(STAR if t.name in bound else (("v", t.name), 0))
        elif isinstance(t, TCon):
            out.append((("c", t.name, len(t.args)), len(t.args)))
            stack.extend(reversed(t.args))
        elif isinstance(t, TFun):
            out.append((("f",), 2))
            stack.append(t.res)
            stack.append(t.arg)
        else:  # RuleType: conservatively one-subterm wildcard
            out.append(STAR)
    return out


def type_query_tokens(tau: Type) -> list[tuple[tuple, int]]:
    """The retrieval stream of a query: every position is rigid.

    Rule types appear as opaque leaves -- only a pattern star can consume
    them, which is exactly how :func:`type_pattern_tokens` emits them.
    """
    out: list[tuple[tuple, int]] = []
    stack: list[Type] = [tau]
    while stack:
        t = stack.pop()
        if isinstance(t, TVar):
            out.append((("v", t.name), 0))
        elif isinstance(t, TCon):
            out.append((("c", t.name, len(t.args)), len(t.args)))
            stack.extend(reversed(t.args))
        elif isinstance(t, TFun):
            out.append((("f",), 2))
            stack.append(t.res)
            stack.append(t.arg)
        else:
            out.append((("r", len(t.tvars), len(t.context)), 0))
    return out


def token_extents(tokens: list) -> list[int]:
    """``extents[i]`` = index one past the subterm starting at token ``i``.

    Lets a pattern star skip a whole query subterm in O(1) during
    retrieval.  Computed with a pending-arity stack in one forward pass.
    """
    extents = [0] * len(tokens)
    pending: list[list[int]] = []  # [start, remaining children]
    for i, tok in enumerate(tokens):
        arity = tok[1]
        pending.append([i, arity])
        while pending and pending[-1][1] == 0:
            start, _ = pending.pop()
            extents[start] = i + 1
            if pending:
                pending[-1][1] -= 1
    return extents


class _TrieNode:
    __slots__ = ("edges", "star", "positions")

    def __init__(self):
        self.edges: dict[tuple[tuple, int], _TrieNode] = {}
        self.star: _TrieNode | None = None
        self.positions: list[int] = []


class DiscriminationTrie:
    """A discrimination trie over preorder token streams.

    Retrieval returns the sorted positions of every stored pattern that
    could match the query -- an over-approximation (stars are matched
    structurally, not semantically), never an under-approximation, so
    downstream matchers only ever *filter* the candidate list.
    """

    __slots__ = ("root", "_skips")

    def __init__(self):
        self.root = _TrieNode()
        #: Per-node memo of "consume exactly one pattern subterm" landing
        #: sets, used for flexible query positions (logic-engine goals
        #: with unbound variables).  Safe to cache: tries are frozen
        #: after construction.
        self._skips: dict[int, tuple[_TrieNode, ...]] = {}

    def insert(self, tokens: list, position: int) -> None:
        node = self.root
        for tok in tokens:
            if tok is STAR:
                child = node.star
                if child is None:
                    child = node.star = _TrieNode()
            else:
                child = node.edges.get(tok)
                if child is None:
                    child = node.edges[tok] = _TrieNode()
            node = child
        node.positions.append(position)

    def _skip_one(self, node: _TrieNode) -> tuple[_TrieNode, ...]:
        """All nodes reachable by consuming one whole pattern subterm."""
        memo = self._skips.get(id(node))
        if memo is not None:
            return memo
        landed: list[_TrieNode] = []
        stack: list[tuple[_TrieNode, int]] = [(node, 1)]
        while stack:
            current, need = stack.pop()
            for tok, child in current.edges.items():
                remaining = need - 1 + tok[1]
                if remaining == 0:
                    landed.append(child)
                else:
                    stack.append((child, remaining))
            if current.star is not None:
                if need == 1:
                    landed.append(current.star)
                else:
                    stack.append((current.star, need - 1))
        memo = tuple(landed)
        self._skips[id(node)] = memo
        return memo

    def retrieve(
        self,
        tokens: list[tuple[tuple, int]],
        extents: list[int],
        flex: frozenset[int] = frozenset(),
    ) -> list[int]:
        """Sorted candidate positions for the query token stream.

        ``flex`` marks query positions that are unconstrained (logic
        variables): they match one whole pattern subterm, star or rigid.
        """
        n = len(tokens)
        found: set[int] = set()
        stack: list[tuple[_TrieNode, int]] = [(self.root, 0)]
        seen: set[tuple[int, int]] = set()
        while stack:
            node, i = stack.pop()
            state = (id(node), i)
            if state in seen:
                continue
            seen.add(state)
            if i == n:
                found.update(node.positions)
                continue
            if i in flex:
                for landing in self._skip_one(node):
                    stack.append((landing, i + 1))
                continue
            tok = tokens[i]
            child = node.edges.get(tok)
            if child is not None:
                stack.append((child, i + 1))
            if node.star is not None:
                stack.append((node.star, extents[i]))
        return sorted(found)

    def describe(self) -> tuple:
        """A deterministic structural summary (edges sorted by token)."""

        def node_key(node: _TrieNode) -> tuple:
            edges = tuple(
                (tok, node_key(child))
                for tok, child in sorted(node.edges.items())
            )
            star = node_key(node.star) if node.star is not None else None
            return (edges, star, tuple(node.positions))

        return node_key(self.root)


# ---------------------------------------------------------------------------
# Per-rule specialized matchers.
# ---------------------------------------------------------------------------


def _contains_rule_type(tau: Type) -> bool:
    return any(isinstance(t, RuleType) for t in subterms(tau))


def _same_type(t1: Type, t2: Type) -> bool:
    """Zero-flex type equality, exactly as ``match_type`` would compare a
    repeated-variable occurrence: identity for interned simple trees,
    full no-flex unification when rule types are involved (whose context
    *set* pairing is coarser than canonical-key equality)."""
    if t1 is t2:
        return True
    try:
        _unify(t1, t2, _EMPTY_FSET, {}, frozenset())
    except _Fail:
        return False
    return True


class _GroundRule:
    """Pointer-equality fast path for fully rigid heads."""

    __slots__ = ("entry", "head", "result", "ambiguous")

    kind = "ground"

    def __init__(self, entry: RuleEntry, tvars: tuple[str, ...],
                 context: tuple[Type, ...], head: Type):
        self.entry = entry
        self.head = head
        # A ground head leaves *every* quantified variable undetermined;
        # `_try_match` raises, and so do we (same wording, built lazily
        # around the query below).
        self.ambiguous = ", ".join(tvars) if tvars else None
        self.result = (
            None
            if tvars
            else LookupResult(entry=entry, type_args=(), context=context, head=head)
        )

    def match(self, tau: Type) -> LookupResult | None:
        if tau is not self.head:
            return None
        if self.ambiguous is not None:
            raise AmbiguousRuleTypeError(
                f"matching {self.entry.rho} against {tau} leaves quantified "
                f"variable(s) {self.ambiguous} undetermined"
            )
        return self.result

    def describe(self) -> tuple:
        return ("ground", canonical_key(self.head), self.ambiguous is not None)


class _ExtractRule:
    """Precompiled skeleton-check + binder-extraction matcher.

    ``ops`` is a preorder instruction list run against an explicit stack
    seeded with the query; maximal variable-free subterms of the head
    collapse into single pointer-equality checks.
    """

    __slots__ = (
        "entry", "tvars", "ops", "nslots", "missing",
        "context", "context_ops", "needs_subst",
    )

    kind = "extract"

    def __init__(self, entry: RuleEntry, tvars: tuple[str, ...],
                 context: tuple[Type, ...], head: Type):
        self.entry = entry
        self.tvars = tvars
        self.nslots = len(tvars)
        slot_of = {name: i for i, name in enumerate(tvars)}
        bound = frozenset(tvars)
        head_vars = ftv(head) & bound
        # Variables absent from the head are undetermined by any match.
        self.missing = ", ".join(v for v in tvars if v not in head_vars) or None
        ops: list[tuple] = []
        seen: set[int] = set()
        stack: list[Type] = [head]
        while stack:
            t = stack.pop()
            if ftv(t).isdisjoint(bound):
                ops.append(("e", t))
            elif isinstance(t, TVar):
                slot = slot_of[t.name]
                if slot in seen:
                    ops.append(("k", slot))
                else:
                    seen.add(slot)
                    ops.append(("b", slot))
            elif isinstance(t, TCon):
                ops.append(("c", t.name, len(t.args)))
                stack.extend(reversed(t.args))
            else:  # TFun (RuleType heads are classified generic)
                ops.append(("f",))
                stack.append(t.res)
                stack.append(t.arg)
        self.ops = tuple(ops)
        self.context = context
        # Per-element context plan: constants pass through untouched,
        # variable-mentioning elements are substituted at match time.
        self.context_ops = tuple(
            (False, rho) if ftv(rho).isdisjoint(bound) else (True, rho)
            for rho in context
        )
        self.needs_subst = any(flag for flag, _ in self.context_ops)

    def match(self, tau: Type) -> LookupResult | None:
        slots: list[Type | None] = [None] * self.nslots
        stack: list[Type] = [tau]
        for op in self.ops:
            t = stack.pop()
            code = op[0]
            if code == "c":
                if type(t) is not TCon or t.name != op[1] or len(t.args) != op[2]:
                    return None
                stack.extend(reversed(t.args))
            elif code == "b":
                slots[op[1]] = t
            elif code == "e":
                if t is not op[1]:
                    return None
            elif code == "f":
                if type(t) is not TFun:
                    return None
                stack.append(t.res)
                stack.append(t.arg)
            else:  # "k": repeated-occurrence check
                if not _same_type(slots[op[1]], t):
                    return None
        if self.missing is not None:
            raise AmbiguousRuleTypeError(
                f"matching {self.entry.rho} against {tau} leaves quantified "
                f"variable(s) {self.missing} undetermined"
            )
        if self.needs_subst:
            theta = {name: slots[i] for i, name in enumerate(self.tvars)}
            context = tuple(
                subst_type(theta, rho) if flag else rho
                for flag, rho in self.context_ops
            )
        else:
            context = self.context
        # theta(head) rebuilds exactly the query's structure, which
        # interning collapses back onto the query object itself.
        return LookupResult(
            entry=self.entry,
            type_args=tuple(slots),  # type: ignore[arg-type]
            context=context,
            head=tau,
        )

    def describe(self) -> tuple:
        slot_names = {name: i for i, name in enumerate(self.tvars)}
        ops = tuple(
            ("e", canonical_key(op[1])) if op[0] == "e" else op
            for op in self.ops
        )
        # Context elements canonicalized with binders as slot indices so
        # alpha-variant rules describe identically.
        to_slots = {name: TVar(f"%{i}") for name, i in slot_names.items()}
        ctx = tuple(
            (flag, canonical_key(subst_type(to_slots, rho)))
            for flag, rho in self.context_ops
        )
        return ("extract", ops, self.missing is not None, ctx)


class _GenericRule:
    """Interpreted fallback (heads embedding rule types)."""

    __slots__ = ("entry",)

    kind = "generic"

    def __init__(self, entry: RuleEntry, tvars: tuple[str, ...],
                 context: tuple[Type, ...], head: Type):
        self.entry = entry

    def match(self, tau: Type) -> LookupResult | None:
        return _try_match(self.entry, tau)

    def describe(self) -> tuple:
        return ("generic", canonical_key(self.entry.rho))


def _compile_rule(entry: RuleEntry):
    tvars, context, head = entry.parts()
    if _contains_rule_type(head):
        return _GenericRule(entry, tvars, context, head)
    if ftv(head).isdisjoint(tvars):
        return _GroundRule(entry, tvars, context, head)
    return _ExtractRule(entry, tvars, context, head)


# ---------------------------------------------------------------------------
# Compiled frames and environments.
# ---------------------------------------------------------------------------

_AMBIGUOUS = object()


class CompiledFrame:
    """One rule set compiled to a trie plus per-rule matchers."""

    __slots__ = ("frame", "rules", "trie", "_pairs", "_decisions", "_scans")

    def __init__(self, frame: tuple[RuleEntry, ...]):
        self.frame = frame
        self.rules = tuple(_compile_rule(entry) for entry in frame)
        trie = DiscriminationTrie()
        for pos, entry in enumerate(frame):
            tvars, _, head = entry.parts()
            trie.insert(type_pattern_tokens(head, frozenset(tvars)), pos)
        self.trie = trie
        #: ``(p, q) -> bool`` memo of ``_more_specific`` between entries.
        self._pairs: dict[tuple[int, int], bool] = {}
        #: matched-position-set -> winning position (or _AMBIGUOUS).
        self._decisions: dict[tuple[int, ...], Any] = {}
        #: id(query) -> (query, matches | None, fallbacks, exception).
        #: Sound to memoize whole scans: the frame is immutable, queries
        #: are interned, and matching is deterministic -- so a repeated
        #: query replays the recorded outcome (including an ambiguity
        #: error).  The value pins the query, keeping its id valid.
        self._scans: dict[int, tuple] = {}

    def matches(self, tau: Type) -> list[tuple[int, LookupResult]]:
        """All matches in entry order, via the trie and compiled rules.

        Scans are memoized per query object; ``compiled_hits`` /
        ``compiled_fallbacks`` count *logical* scans, so a memoized
        replay records the same counters the original scan did.
        """
        memo = None if _CORRUPT else self._scans.get(id(tau))
        if memo is not None and memo[0] is tau:
            record_compiled(memo[2])
            if memo[3] is not None:
                raise memo[3]
            return memo[1]
        positions = self._retrieve(tau)
        if _CORRUPT and positions:
            positions = positions[:-1]
        found: list[tuple[int, LookupResult]] = []
        fallbacks = 0
        error: AmbiguousRuleTypeError | None = None
        rules = self.rules
        try:
            for pos in positions:
                rule = rules[pos]
                if rule.kind == "generic":
                    fallbacks += 1
                result = rule.match(tau)
                if result is not None:
                    found.append((pos, result))
        except AmbiguousRuleTypeError as exc:
            error = exc
        record_compiled(fallbacks)
        if not _CORRUPT:
            if len(self._scans) >= _MAX_SCAN_MEMO:
                self._scans.clear()
            self._scans[id(tau)] = (
                tau,
                None if error is not None else found,
                fallbacks,
                error,
            )
        if error is not None:
            raise error
        return found

    def _retrieve(self, tau: Type) -> list[int]:
        tokens = type_query_tokens(tau)
        return self.trie.retrieve(tokens, token_extents(tokens))

    def most_specific(
        self, matched: list[tuple[int, LookupResult]], tau: Type
    ) -> LookupResult:
        """MOST_SPECIFIC winner with position-set memoization.

        Mirrors ``_most_specific``: the first match that is more specific
        than every other wins, else the overlap error (same wording).
        """
        key = tuple(pos for pos, _ in matched)
        decision = self._decisions.get(key)
        if decision is None:
            pairs = self._pairs
            for pos, result in matched:
                for other_pos, other in matched:
                    if other_pos == pos:
                        continue
                    verdict = pairs.get((pos, other_pos))
                    if verdict is None:
                        verdict = _more_specific(result, other)
                        pairs[(pos, other_pos)] = verdict
                    if not verdict:
                        break
                else:
                    decision = pos
                    break
            else:
                decision = _AMBIGUOUS
            self._decisions[key] = decision
        if decision is _AMBIGUOUS:
            raise OverlappingRulesError(
                f"query {tau}: no unique most-specific rule among: "
                + ", ".join(str(r.entry.rho) for _, r in matched)
            )
        for pos, result in matched:
            if pos == decision:
                return result
        raise AssertionError("memoized winner not among current matches")

    def describe(self) -> tuple:
        return (
            tuple(rule.describe() for rule in self.rules),
            self.trie.describe(),
        )


class CompiledEnv:
    """A frozen environment's compiled form: one artifact per frame."""

    __slots__ = ("env", "frames")

    def __init__(self, env: ImplicitEnv, frames: tuple[CompiledFrame, ...]):
        self.env = env
        self.frames = frames

    def lookup(
        self, tau: Type, policy: OverlapPolicy = OverlapPolicy.REJECT
    ) -> LookupResult:
        """Innermost-first lookup, byte-identical to the interpreted one."""
        for compiled in reversed(self.frames):
            matched = compiled.matches(tau)
            if not matched:
                continue
            if len(matched) > 1:
                if policy is OverlapPolicy.REJECT:
                    raise OverlappingRulesError(
                        f"query {tau} matches {len(matched)} rules in one rule set: "
                        + ", ".join(str(r.entry.rho) for _, r in matched)
                    )
                return compiled.most_specific(matched, tau)
            return matched[0][1]
        raise NoMatchingRuleError(
            f"no rule matching {tau} in the implicit environment"
        )

    def lookup_all(self, tau: Type) -> Iterator[LookupResult]:
        for compiled in reversed(self.frames):
            for _, result in compiled.matches(tau):
                yield result

    def describe(self) -> tuple:
        return tuple(compiled.describe() for compiled in self.frames)

    def trie_key(self) -> bytes:
        """Deterministic serialized artifact identity: equal fingerprints
        (alpha-equivalent frame stacks) yield byte-identical keys."""
        return repr(self.describe()).encode()


# ---------------------------------------------------------------------------
# Memoization (mirroring ``program_of_env``'s bounded-FIFO discipline).
# ---------------------------------------------------------------------------

_MEMO_LOCK = threading.Lock()
_MAX_MEMO = 256
#: Per-frame cap on memoized query scans (cleared wholesale on overflow;
#: steady-state programs query far fewer distinct types per scope).
_MAX_SCAN_MEMO = 1024
#: id(frame tuple) -> CompiledFrame.  The value pins the frame, so its id
#: cannot be recycled while the memo entry lives; frames are shared
#: structurally by ``push``, which is what makes an environment and its
#: extensions share per-frame artifacts.
_FRAME_MEMO: dict[int, CompiledFrame] = {}
#: (fingerprint, payload witness) -> CompiledEnv.  The value pins the
#: environment (ids in the witness stay valid); hits additionally verify
#: frame identity so results always carry the caller's own entry objects.
_ENV_MEMO: dict[tuple, CompiledEnv] = {}


def compiled_frame_for(frame: tuple[RuleEntry, ...]) -> CompiledFrame:
    """The compiled form of one rule set (memoized by frame identity)."""
    key = id(frame)
    with _MEMO_LOCK:
        hit = _FRAME_MEMO.get(key)
        if hit is not None and hit.frame is frame:
            return hit
    compiled = CompiledFrame(frame)
    with _MEMO_LOCK:
        _FRAME_MEMO[key] = compiled
        while len(_FRAME_MEMO) > _MAX_MEMO:
            _FRAME_MEMO.pop(next(iter(_FRAME_MEMO)))
    return compiled


def compiled_env_for(env: ImplicitEnv) -> CompiledEnv:
    """The compiled form of an environment, keyed on its fingerprint and
    payload witness (the same pair the derivation cache keys on)."""
    key = (env.fingerprint(), env.payload_witness())
    frames = env.frames()
    with _MEMO_LOCK:
        hit = _ENV_MEMO.get(key)
    if (
        hit is not None
        and len(hit.env.frames()) == len(frames)
        and all(a is b for a, b in zip(hit.env.frames(), frames))
    ):
        return hit
    compiled = CompiledEnv(env, tuple(compiled_frame_for(f) for f in frames))
    with _MEMO_LOCK:
        _ENV_MEMO[key] = compiled
        while len(_ENV_MEMO) > _MAX_MEMO:
            _ENV_MEMO.pop(next(iter(_ENV_MEMO)))
    return compiled


def clear_compiled_cache() -> None:
    """Drop every memoized compiled artifact (tests, memory pressure)."""
    with _MEMO_LOCK:
        _FRAME_MEMO.clear()
        _ENV_MEMO.clear()
