"""Memoized resolution: a derivation cache over ``Delta |-r rho``.

Resolution is the hot path of the whole system -- the type checker, the
elaborator and the logic interpretation all re-resolve structurally
identical queries against the same environments.  This module caches
whole :class:`~repro.core.resolution.Derivation` trees keyed on

    (environment fingerprint, payload witness,
     canonical_key(query), strategy, overlap policy)

so a repeated query is answered by one dictionary probe instead of a
full proof search.  Since types are hash-consed
(:mod:`repro.core.types`), ``canonical_key`` is usually a cached-field
read and key hashing reuses each node's memoized hash, keeping probes
cheap even for deep queries.

Correctness invariants (each is load-bearing; the differential tests in
``tests/integration/test_cache_transparency.py`` pin them down):

* **Lexical scoping.**  The key's first component is the environment's
  structural :class:`~repro.core.env.EnvFingerprint`, computed
  incrementally on ``push``.  Pushing a frame changes the key (a nested
  scope can never be served an outer scope's derivation), and popping
  back to the old environment re-yields the old fingerprint, so prior
  entries re-hit.
* **Evidence identity.**  Structural equality of environments is not
  enough for consumers that read *payloads* off the derivation (the
  elaborator's ``TrRes`` turns ``lookup.payload`` into a System F term).
  The key therefore also contains the environment's
  :meth:`~repro.core.env.ImplicitEnv.payload_witness` -- per-entry
  payload object identities -- and every cache entry keeps a strong
  reference to the environment it was computed against, so those ids can
  never be recycled by the allocator while the cache lives.  Two keys
  match only if the payloads are the *same objects*.
* **Fuel monotonicity.**  An outcome (success or failure) observed with
  ``f`` units of fuel is identical for every fuel ``>= f``: fuel only
  converts deep exploration into :class:`ResolutionDivergenceError`, and
  divergence always propagates (even the backtracking strategy re-raises
  it), so a non-diverging run never had a branch cut short.  Entries
  record the smallest fuel at which their outcome was observed and only
  answer probes with at least that much fuel; probes with less recompute
  (and lower the recorded bound on success).
* **Divergence is never cached.**  A query that exhausts its fuel raises
  :class:`ResolutionDivergenceError` and leaves no entry -- neither
  positive nor negative -- because a later probe may arrive with more
  fuel and deserve the deeper search.  :meth:`ResolutionCache.put_failure`
  enforces this with a hard error.

Eviction is FIFO with a configurable bound; resolution caches are
workload-local, and insertion order approximates age well enough without
the bookkeeping of an LRU chain on the hot path.

The cache is **thread-safe**: the resolution server
(:mod:`repro.service`) shares one cache per session across a pool of
worker threads, so probes and inserts are serialized on a per-cache
lock.  The critical sections are a dictionary probe or an
insert-plus-FIFO-evict -- short enough that the lock is uncontended in
practice -- and entries themselves are immutable apart from the
monotonically shrinking ``min_fuel`` bound, which is only rewritten
under the same lock.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from ..errors import (
    DeadlineExceededError,
    ResolutionDivergenceError,
    ResolutionError,
)
from .env import ImplicitEnv, OverlapPolicy
from .types import Type, canonical_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .resolution import Derivation, ResolutionStrategy

DEFAULT_MAX_ENTRIES = 4096


class _Entry:
    """One cached outcome plus the metadata needed to replay it safely."""

    __slots__ = ("outcome", "is_success", "min_fuel", "env")

    def __init__(self, outcome: Any, is_success: bool, min_fuel: int, env: ImplicitEnv):
        self.outcome = outcome
        self.is_success = is_success
        self.min_fuel = min_fuel
        #: Strong reference pinning the payload ids in the key (see module docs).
        self.env = env


class ResolutionCache:
    """A bounded memo table for resolution outcomes."""

    __slots__ = ("_entries", "max_entries", "_lock")

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._entries: dict[tuple, _Entry] = {}
        self.max_entries = max_entries
        self._lock = threading.Lock()

    # -- keys ------------------------------------------------------------

    @staticmethod
    def key_for(
        env: ImplicitEnv,
        rho: Type,
        strategy: "ResolutionStrategy",
        policy: OverlapPolicy,
    ) -> tuple:
        """The full cache key for one resolution step."""
        return (
            env.fingerprint(),
            env.payload_witness(),
            canonical_key(rho),
            strategy,
            policy,
        )

    # -- probes ----------------------------------------------------------

    def get(self, key: tuple, fuel: int) -> _Entry | None:
        """The entry for ``key`` usable at ``fuel``, or ``None``.

        An entry only answers when the probe has at least as much fuel as
        the outcome was observed with (fuel monotonicity, module docs).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or fuel < entry.min_fuel:
                return None
            return entry

    def put_success(
        self, key: tuple, derivation: "Derivation", env: ImplicitEnv, fuel: int
    ) -> None:
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.is_success:
                # Same deterministic outcome observed at lower fuel: widen the
                # entry's applicability instead of re-inserting.
                if fuel < existing.min_fuel:
                    existing.min_fuel = fuel
                return
            self._insert(key, _Entry(derivation, True, fuel, env))

    def put_failure(
        self, key: tuple, error: ResolutionError, env: ImplicitEnv, fuel: int
    ) -> None:
        if isinstance(error, (ResolutionDivergenceError, DeadlineExceededError)):
            raise ValueError(
                "refusing to cache a fuel- or deadline-dependent outcome as "
                "a negative result; it is not a property of the query"
            )
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and not existing.is_success:
                if fuel < existing.min_fuel:
                    existing.min_fuel = fuel
                return
            self._insert(key, _Entry(error, False, fuel, env))

    def _insert(self, key: tuple, entry: _Entry) -> None:
        # Caller holds ``self._lock``.
        entries = self._entries
        if key not in entries and len(entries) >= self.max_entries:
            entries.pop(next(iter(entries)))  # FIFO: dicts preserve insertion
        entries[key] = entry

    def seed(
        self,
        key: tuple,
        outcome: Any,
        is_success: bool,
        min_fuel: int,
        env: ImplicitEnv | None,
    ) -> None:
        """Adopt an externally computed entry (persistent-store warm-up).

        Unlike :meth:`put_success`/:meth:`put_failure` this performs no
        write-through in subclasses: the caller is handing us an entry
        that already lives on disk.  ``env`` may be ``None`` when the
        entry's payload witness is all-``None`` (nothing to pin).
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                if min_fuel < existing.min_fuel:
                    existing.min_fuel = min_fuel
                return
            self._insert(key, _Entry(outcome, is_success, min_fuel, env))

    # -- maintenance -----------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries


# ---------------------------------------------------------------------------
# Structural derivation identity (for the differential test harness).
# ---------------------------------------------------------------------------


def derivation_key(derivation: "Derivation") -> tuple:
    """A structural key identifying a derivation tree.

    :class:`~repro.core.resolution.Assumption` tokens compare by
    *identity* (each tree owns fresh binders), so ``Derivation`` equality
    cannot be used to check that a cached tree matches a freshly computed
    one.  This key replaces every token by its ``(index, type)`` role --
    including tokens appearing as lookup payloads under the extending
    strategies -- yielding a canonical form that is equal exactly when
    two trees represent the same proof.
    """
    from .resolution import Assumption, ByAssumption, ByCorecursion, ByResolution

    def premise_key(premise) -> tuple:
        if isinstance(premise, ByAssumption):
            return ("assume", premise.token.index, canonical_key(premise.token.rho))
        if isinstance(premise, ByCorecursion):
            # Cycle tokens also compare by identity; their role is fully
            # described by the goal they loop back to.
            return ("corec", canonical_key(premise.token.rho))
        if isinstance(premise, ByResolution):
            return ("resolve", derivation_key(premise.derivation))
        raise TypeError(f"unknown premise {premise!r}")

    payload = derivation.lookup.payload
    if isinstance(payload, Assumption):
        payload_key: tuple | None = ("token", payload.index, canonical_key(payload.rho))
    else:
        payload_key = None

    return (
        canonical_key(derivation.query),
        derivation.tvars,
        tuple(canonical_key(rho) for rho in derivation.context),
        canonical_key(derivation.head),
        canonical_key(derivation.lookup.entry.rho),
        tuple(canonical_key(tau) for tau in derivation.lookup.type_args),
        tuple(canonical_key(rho) for rho in derivation.lookup.context),
        canonical_key(derivation.lookup.head),
        payload_key,
        tuple(premise_key(p) for p in derivation.premises),
        derivation.cycle is not None,
    )
