"""Implicit environments and rule lookup (Fig. 1 of the paper).

An implicit environment ``Delta`` is a *stack of rule sets*; nesting of
rule applications pushes a new set.  Lookup of a queried type ``tau``:

* proceeds from the innermost (topmost) rule set outwards -- this gives
  the lexical scoping and the "nearest match wins" behaviour of the
  overview examples;
* within one rule set, finds entries ``rho = forall a-bar'.rho-bar' => tau'``
  whose head matches ``tau`` under a one-way unifier ``theta``
  (``theta tau' = tau``);
* fails with :class:`OverlappingRulesError` when several distinct entries
  of the *same* set match -- the paper's ``no_overlap`` condition -- unless
  the :class:`OverlapPolicy.MOST_SPECIFIC` policy of the companion
  material is selected, in which case a unique most-specific match is
  chosen (and its absence is an error).

Entries carry an arbitrary *payload*: ``None`` during pure type checking,
a System F evidence term during elaboration, a runtime closure in the
operational semantics.  This mirrors how the paper reuses one lookup
relation across Fig. 1, Fig. 2 and the big-step semantics.

Lookup is **head-constructor indexed** (classic first-argument indexing
from logic programming): every frame carries a :class:`FrameIndex`
bucketing its entries by the rigid root constructor of their heads, plus
a flex bucket of variable-headed rules that must always be consulted.
Matching is only attempted against the candidates a query's own head
symbol selects, turning one frame scan from O(entries) matching attempts
into O(candidates).  Indexing is observably equivalent to the naive scan
(same matches, in the same entry order, hence the same results *and* the
same overlap failures) -- the differential tests in
``tests/property/test_property_index.py`` pin this down -- and can be
disabled globally with :func:`set_indexing` (CLI ``--no-index``) or per
call via the ``use_index`` parameter.
"""

from __future__ import annotations

import enum
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..errors import (
    AmbiguousRuleTypeError,
    NoMatchingRuleError,
    OverlappingRulesError,
)
from ..obs import record_index, record_lookup
from .subst import fresh_tvar, subst_type
from .types import RuleType, TVar, Type, canonical_key, head_symbol, promote
from .unify import match_type

# ---------------------------------------------------------------------------
# Global indexing toggle (CLI --index/--no-index).
# ---------------------------------------------------------------------------

_INDEXING = True


def indexing_enabled() -> bool:
    """Whether head-constructor indexing is globally enabled."""
    return _INDEXING


def set_indexing(enabled: bool) -> bool:
    """Set the global indexing default; returns the previous value."""
    global _INDEXING
    previous = _INDEXING
    _INDEXING = bool(enabled)
    return previous


@contextmanager
def indexing(enabled: bool) -> Iterator[None]:
    """Scoped :func:`set_indexing` (used by tests and benchmarks)."""
    previous = set_indexing(enabled)
    try:
        yield
    finally:
        set_indexing(previous)


# ---------------------------------------------------------------------------
# Global compiled-matcher toggle (CLI --compile/--no-compile).
#
# Defined here rather than in ``compile_env`` (which re-exports it) so
# the dispatch in :meth:`ImplicitEnv.lookup` needs no import cycle; off
# by default -- compilation pays off on repeated lookups against wide
# frozen environments, and the interpreted path remains the reference
# semantics the differential oracles compare against.
# ---------------------------------------------------------------------------

_COMPILING = False


def compiling_enabled() -> bool:
    """Whether compiled environment matchers are globally enabled."""
    return _COMPILING


def set_compiling(enabled: bool) -> bool:
    """Set the global compiled-matcher default; returns the previous value."""
    global _COMPILING
    previous = _COMPILING
    _COMPILING = bool(enabled)
    return previous


@contextmanager
def compiling(enabled: bool) -> Iterator[None]:
    """Scoped :func:`set_compiling` (used by tests and benchmarks)."""
    previous = set_compiling(enabled)
    try:
        yield
    finally:
        set_compiling(previous)


class OverlapPolicy(enum.Enum):
    """How to handle several matching rules within one rule set."""

    #: The paper's ``no_overlap``: any overlap within a set is an error.
    REJECT = "reject"
    #: The companion material's two-level priority scheme: within a set,
    #: the unique most-specific matching rule wins.
    MOST_SPECIFIC = "most_specific"


@dataclass(frozen=True)
class RuleEntry:
    """One rule in a rule set: its type plus a stage-specific payload."""

    rho: Type
    payload: Any = None

    def parts(self) -> tuple[tuple[str, ...], tuple[Type, ...], Type]:
        return promote(self.rho)


@dataclass(frozen=True)
class LookupResult:
    """The outcome of a successful lookup.

    * ``entry`` -- the matched environment entry;
    * ``type_args`` -- instantiations of the entry's quantified variables,
      in declaration order (feeds ``x |tau-bar|`` in rule ``TrRes``);
    * ``context`` -- the instantiated context ``theta rho-bar'``;
    * ``head`` -- the instantiated head (alpha-equal to the query).
    """

    entry: RuleEntry
    type_args: tuple[Type, ...]
    context: tuple[Type, ...]
    head: Type

    @property
    def payload(self) -> Any:
        return self.entry.payload


class EnvFingerprint:
    """A structural, frame-stack-aware identity token for an environment.

    Two environments carry equal fingerprints **iff** their frame stacks
    are structurally equal: same number of frames, and frame-by-frame the
    same sequence of entry types up to alpha-equivalence (payloads are
    deliberately ignored -- see :meth:`ImplicitEnv.payload_witness` for
    the companion token that distinguishes evidence).  Equality is exact
    (full canonical keys are retained), while the hash is *chained*: each
    ``push`` combines the parent's hash with the new frame's key in O(new
    frame), so fingerprints are cheap to extend incrementally and equal
    key sequences always hash alike.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple, hash_: int):
        self.key = key
        self._hash = hash_

    def extend(self, frame_key: tuple) -> "EnvFingerprint":
        return EnvFingerprint(self.key + (frame_key,), hash((self._hash, frame_key)))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, EnvFingerprint):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"EnvFingerprint(depth={len(self.key)}, hash={self._hash:#x})"


_EMPTY_FINGERPRINT = EnvFingerprint((), hash(("implicit-env-root",)))


def _frame_key(frame: tuple[RuleEntry, ...]) -> tuple:
    """The structural key of one rule set (entry order is significant)."""
    return tuple(canonical_key(entry.rho) for entry in frame)


def _merge_positions(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """Merge two sorted position tuples, preserving entry order."""
    if not a:
        return b
    if not b:
        return a
    out: list[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if a[i] < b[j]:
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return tuple(out)


class FrameIndex:
    """Head-constructor index over one rule set.

    ``rigid`` buckets entry positions by the rigid head symbol of each
    entry's rule head (see :func:`repro.core.types.head_symbol`);
    ``flex`` holds the positions of variable-headed rules, which can
    match *any* query and are merged into every candidate list.  Like
    frames themselves, indexes are immutable and shared structurally
    between an environment and everything pushed on top of it.
    """

    __slots__ = ("rigid", "flex", "width")

    def __init__(self, frame: tuple[RuleEntry, ...]):
        rigid: dict[tuple, list[int]] = {}
        flex: list[int] = []
        for pos, entry in enumerate(frame):
            tvars, _, head = entry.parts()
            sym = head_symbol(head, frozenset(tvars))
            if sym is None:
                flex.append(pos)
            else:
                rigid.setdefault(sym, []).append(pos)
        self.rigid: dict[tuple, tuple[int, ...]] = {
            sym: tuple(positions) for sym, positions in rigid.items()
        }
        self.flex: tuple[int, ...] = tuple(flex)
        self.width = len(frame)

    def candidates(self, sym: tuple) -> tuple[int, ...]:
        """Positions that could match a query with head symbol ``sym``,
        in entry order (so indexed and naive scans agree on ordering)."""
        return _merge_positions(self.rigid.get(sym, ()), self.flex)


class ImplicitEnv:
    """An immutable stack of rule sets (``Delta ::= . | Delta; rho-bar``)."""

    __slots__ = ("_frames", "_fingerprint", "_witness", "_indexes")

    def __init__(
        self,
        frames: tuple[tuple[RuleEntry, ...], ...] = (),
        fingerprint: EnvFingerprint | None = None,
        indexes: tuple[FrameIndex, ...] | None = None,
    ):
        self._frames = frames
        self._fingerprint = fingerprint
        self._witness: tuple | None = None
        self._indexes = indexes

    @staticmethod
    def empty() -> "ImplicitEnv":
        return ImplicitEnv()

    def push(self, entries: Iterable[RuleEntry | Type]) -> "ImplicitEnv":
        """Extend with a new innermost rule set.

        Bare types are wrapped in payload-less entries for convenience.
        The child's fingerprint is derived incrementally from this
        environment's: pushing extends the key chain, and "popping" --
        resuming use of this (immutable) environment -- re-yields the old
        fingerprint, so caches keyed on it re-hit after a scope exits.
        The child's head-constructor index is likewise incremental: only
        the new frame is indexed; the parent's frame indexes are shared.
        """
        frame = tuple(
            e if isinstance(e, RuleEntry) else RuleEntry(e) for e in entries
        )
        return ImplicitEnv(
            self._frames + (frame,),
            self.fingerprint().extend(_frame_key(frame)),
            self.indexes() + (FrameIndex(frame),),
        )

    def indexes(self) -> tuple[FrameIndex, ...]:
        """Per-frame head-constructor indexes, outermost first (computed
        lazily for directly-constructed environments, incrementally via
        :meth:`push`)."""
        indexes = self._indexes
        if indexes is None:
            indexes = tuple(FrameIndex(frame) for frame in self._frames)
            self._indexes = indexes
        return indexes

    def fingerprint(self) -> EnvFingerprint:
        """The structural fingerprint of this frame stack (see
        :class:`EnvFingerprint`; computed lazily for directly-constructed
        environments, incrementally via :meth:`push`)."""
        fp = self._fingerprint
        if fp is None:
            fp = _EMPTY_FINGERPRINT
            for frame in self._frames:
                fp = fp.extend(_frame_key(frame))
            self._fingerprint = fp
        return fp

    def payload_witness(self) -> tuple:
        """Identity token for the payloads carried by this environment.

        The structural fingerprint ignores payloads, but consumers such
        as the elaborator read evidence off lookup results, so a
        derivation cache must not conflate structurally equal
        environments carrying *different* evidence.  The witness is the
        per-entry tuple of payload object identities (``None`` for bare
        entries); a cache that keys on ``(fingerprint, witness)`` and
        keeps the witnessed environment alive (so ids cannot be recycled)
        therefore only ever matches environments whose payloads are the
        very same objects.  Pure type checking pushes payload-less
        entries, making the witness a tuple of ``None`` -- structurally
        equal environments then share cache entries, which is the hot
        path the cache exists for.
        """
        witness = self._witness
        if witness is None:
            witness = tuple(
                None if entry.payload is None else id(entry.payload)
                for frame in self._frames
                for entry in frame
            )
            self._witness = witness
        return witness

    def frames(self) -> tuple[tuple[RuleEntry, ...], ...]:
        """Outermost-first tuple of rule sets."""
        return self._frames

    def entries(self) -> Iterator[RuleEntry]:
        """All entries, innermost frame first."""
        for frame in reversed(self._frames):
            yield from frame

    def __len__(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)

    def lookup(
        self,
        tau: Type,
        policy: OverlapPolicy = OverlapPolicy.REJECT,
        use_index: bool | None = None,
        use_compiled: bool | None = None,
    ) -> LookupResult:
        """Find the rule for ``tau`` (Fig. 1's ``Delta(tau)``).

        Raises :class:`NoMatchingRuleError` if no frame matches,
        :class:`OverlappingRulesError` on ambiguous overlap, and
        :class:`AmbiguousRuleTypeError` if matching leaves a quantified
        variable of the winning rule uninstantiated (the extended report's
        "ambiguous instantiation" runtime error, caught here statically).

        ``use_index`` selects head-constructor indexed candidate
        selection (``None`` defers to the global :func:`set_indexing`
        toggle); indexed and naive scans are observably equivalent.
        ``use_compiled`` routes the whole lookup through the compiled
        discrimination-trie matcher of :mod:`repro.core.compile_env`
        (``None`` defers to :func:`set_compiling`); compiled and
        interpreted lookups are observably equivalent too.
        """
        record_lookup()
        if use_compiled is None:
            use_compiled = _COMPILING
        if use_compiled:
            from .compile_env import compiled_env_for

            return compiled_env_for(self).lookup(tau, policy)
        if use_index is None:
            use_index = _INDEXING
        if use_index:
            indexes = self.indexes()
            sym = head_symbol(tau)
        for pos in range(len(self._frames) - 1, -1, -1):
            frame = self._frames[pos]
            matches = _frame_matches(
                frame, tau, indexes[pos] if use_index else None, sym if use_index else None
            )
            if not matches:
                continue
            if len(matches) > 1:
                if policy is OverlapPolicy.REJECT:
                    raise OverlappingRulesError(
                        f"query {tau} matches {len(matches)} rules in one rule set: "
                        + ", ".join(str(m.entry.rho) for m in matches)
                    )
                matches = [_most_specific(matches, tau)]
            return matches[0]
        raise NoMatchingRuleError(f"no rule matching {tau} in the implicit environment")

    def lookup_all(
        self,
        tau: Type,
        use_index: bool | None = None,
        use_compiled: bool | None = None,
    ) -> Iterator[LookupResult]:
        """All matches for ``tau`` in nearness order (inner frames first).

        Used by the ``BACKTRACKING`` resolution strategy -- the "fully
        semantic" notion of resolution the paper discusses and rejects --
        which may fall back to a farther rule when a nearer one gets
        stuck.  No ``no_overlap`` check is performed: provability, not
        coherence, is the point of that strategy.
        """
        record_lookup()
        if use_compiled is None:
            use_compiled = _COMPILING
        if use_compiled:
            from .compile_env import compiled_env_for

            yield from compiled_env_for(self).lookup_all(tau)
            return
        if use_index is None:
            use_index = _INDEXING
        if use_index:
            indexes = self.indexes()
            sym = head_symbol(tau)
        for pos in range(len(self._frames) - 1, -1, -1):
            yield from _frame_matches(
                self._frames[pos],
                tau,
                indexes[pos] if use_index else None,
                sym if use_index else None,
            )


def _frame_matches(
    frame: tuple[RuleEntry, ...],
    tau: Type,
    index: FrameIndex | None = None,
    sym: tuple | None = None,
) -> list[LookupResult]:
    found: list[LookupResult] = []
    if index is not None:
        if sym is None:
            sym = head_symbol(tau)
        positions = index.candidates(sym)
        record_index(len(frame) - len(positions))
        for pos in positions:
            result = _try_match(frame[pos], tau)
            if result is not None:
                found.append(result)
        return found
    for entry in frame:
        result = _try_match(entry, tau)
        if result is not None:
            found.append(result)
    return found


def _try_match(entry: RuleEntry, tau: Type) -> LookupResult | None:
    tvars, context, head = entry.parts()
    fresh = tuple(fresh_tvar(v.split("%")[0]) for v in tvars)
    renaming = {old: TVar(new) for old, new in zip(tvars, fresh)}
    head_f = subst_type(renaming, head)
    theta = match_type(head_f, tau, fresh)
    if theta is None:
        return None
    missing = [v for v in fresh if v not in theta]
    if missing:
        # ``unambiguous`` rules never reach this (all tvars occur in the
        # head); hand-built environments can, and the paper classifies it
        # as the "ambiguous instantiation" error.
        raise AmbiguousRuleTypeError(
            f"matching {entry.rho} against {tau} leaves quantified variable(s) "
            f"{', '.join(tvars[fresh.index(m)] for m in missing)} undetermined"
        )
    type_args = tuple(theta[v] for v in fresh)
    inst_context = tuple(subst_type(theta, subst_type(renaming, rho)) for rho in context)
    return LookupResult(
        entry=entry,
        type_args=type_args,
        context=inst_context,
        head=subst_type(theta, head_f),
    )


def _instance_of(a: LookupResult, b: LookupResult) -> bool:
    """Whether ``a``'s head is a substitution instance of ``b``'s head."""
    _, _, a_head = a.entry.parts()
    b_tvars, _, b_head = b.entry.parts()
    # Head-symbol prune: a rigid-headed pattern can only instantiate to
    # heads with the identical root constructor.
    b_sym = head_symbol(b_head, frozenset(b_tvars))
    if b_sym is not None and b_sym != head_symbol(a_head):
        return False
    fresh_b = tuple(fresh_tvar("s") for _ in b_tvars)
    ren_b = {old: TVar(new) for old, new in zip(b_tvars, fresh_b)}
    # a's own quantified variables act as rigid constants here.
    return match_type(subst_type(ren_b, b_head), a_head, fresh_b) is not None


def _rigid_symbols(result: LookupResult) -> int:
    """Number of non-variable nodes in a rule head (pattern refinement)."""
    from .types import TVar as _TVar, subterms

    tvars, _, head = result.entry.parts()
    bound = set(tvars)
    return sum(
        1
        for t in subterms(head)
        if not (isinstance(t, _TVar) and t.name in bound)
    )


def _more_specific(a: LookupResult, b: LookupResult) -> bool:
    """Whether ``a`` is strictly more specific than ``b``.

    Primary order: the standard instance preorder on heads (``Int -> Int``
    is more specific than ``forall a. a -> a``).  The companion material
    additionally wants ``forall a. a -> Int`` to beat ``forall a. a -> a``
    at the query ``Int -> Int`` even though the two heads are incomparable
    in the instance preorder; we realise its (underspecified) meet
    operation by a pattern-refinement tiebreak: more rigid symbols in the
    head means more specific, provided neither head is an instance of the
    other.
    """
    a_inst_b = _instance_of(a, b)
    b_inst_a = _instance_of(b, a)
    if a_inst_b and not b_inst_a:
        return True
    if b_inst_a:
        return False
    return _rigid_symbols(a) > _rigid_symbols(b)


def _most_specific(matches: list[LookupResult], tau: Type) -> LookupResult:
    """Unique most-specific match, or :class:`OverlappingRulesError`."""
    for candidate in matches:
        if all(c is candidate or _more_specific(candidate, c) for c in matches):
            return candidate
    raise OverlappingRulesError(
        f"query {tau}: no unique most-specific rule among: "
        + ", ".join(str(m.entry.rho) for m in matches)
    )
