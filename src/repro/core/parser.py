"""Concrete syntax for the core calculus lambda_=>.

While the source language (section 5) hides instantiation, core programs
spell everything out, mirroring the paper's notation in ASCII::

    rule({Int, Bool} => (Int, Bool), (?Int + 1, not ?Bool))
        with {1 : Int, True : Bool}

Grammar::

    expr     ::= '\\' lident ':' type '.' expr
               | 'if' expr 'then' expr 'else' expr
               | 'implicit' '{' binding,* '}' 'in' expr ':' type
               | opexpr
    opexpr   ::= precedence climbing over || && (== < <=) ++ (+ -) (*)
    wexpr    ::= appexpr ['with' '{' binding,* '}']*
    binding  ::= expr [':' scheme]
    appexpr  ::= postfix postfix*
    postfix  ::= atom ('[' type,* ']' | '.' lident)*
    atom     ::= INT | STRING | 'True' | 'False' | lident
               | '#' lident                                  (primitive)
               | '?' atype | '?' '(' scheme ')'               (query)
               | 'rule' '(' scheme ',' expr ')'               (rule abs)
               | UIdent '[' type,* ']' '{' lident '=' expr,* '}'  (record)
               | '(' expr ')' | '(' expr ',' expr ')' | '[' expr,* ']'

Types and schemes reuse the source-language type grammar (the two
languages share their type syntax by construction).  Bindings without an
annotation must be closed expressions; their rule type is inferred with
an empty environment, as in the paper's lightened notation.
"""

from __future__ import annotations

from ..errors import ParseError
from ..source.lexer import TokenStream, tokenize
from ..source.parser import BINARY_OPERATORS, _parse_atype, _parse_scheme
from .prims import PRIMS
from .terms import (
    App,
    BoolLit,
    Expr,
    If,
    IntLit,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    StrLit,
    TyApp,
    Var,
)
from .types import RuleType, Type, rule

_MAX_PRECEDENCE = 7


def parse_core_expr(source: str) -> Expr:
    """Parse a core-calculus expression."""
    stream = TokenStream(tokenize(source))
    expr = _parse_expr(stream)
    if stream.current.kind != "EOF":
        raise stream.error("unexpected trailing input")
    return expr


def parse_core_type(source: str) -> Type:
    """Parse a core-calculus type or rule type."""
    stream = TokenStream(tokenize(source))
    scheme = _parse_scheme(stream)
    if stream.current.kind != "EOF":
        raise stream.error("unexpected trailing input")
    return scheme


def _parse_expr(stream: TokenStream) -> Expr:
    if stream.at_symbol("\\"):
        stream.advance()
        name = stream.eat("LIDENT").text
        stream.eat_symbol(":")
        var_type = _parse_scheme(stream)
        stream.eat_symbol(".")
        from .terms import Lam

        return Lam(name, var_type, _parse_expr(stream))
    if stream.at_keyword("if"):
        stream.advance()
        cond = _parse_expr(stream)
        stream.eat_keyword("then")
        then = _parse_expr(stream)
        stream.eat_keyword("else")
        orelse = _parse_expr(stream)
        return If(cond, then, orelse)
    if stream.at_keyword("implicit"):
        stream.advance()
        stream.eat_symbol("{")
        bindings = _parse_bindings(stream)
        stream.eat_symbol("}")
        stream.eat_keyword("in")
        body = _parse_expr(stream)
        stream.eat_symbol(":")
        result_type = _parse_scheme(stream)
        context = tuple(rho for _, rho in bindings)
        return RuleApp(RuleAbs(RuleType((), context, result_type), body), bindings)
    return _parse_operators(stream, 1)


def _parse_bindings(stream: TokenStream) -> tuple[tuple[Expr, Type], ...]:
    bindings: list[tuple[Expr, Type]] = []
    while True:
        expr = _parse_expr(stream)
        if stream.try_symbol(":"):
            rho = _parse_scheme(stream)
        else:
            rho = _infer_closed(expr, stream)
        bindings.append((expr, rho))
        if not stream.try_symbol(","):
            break
    return tuple(bindings)


def _infer_closed(expr: Expr, stream: TokenStream) -> Type:
    from ..errors import TypecheckError
    from .typecheck import TypeChecker

    try:
        return TypeChecker().check_program(expr)
    except TypecheckError as exc:
        raise ParseError(
            f"binding {expr} needs a type annotation ({exc})",
            stream.current.line,
            stream.current.column,
        ) from exc


def _parse_operators(stream: TokenStream, min_precedence: int) -> Expr:
    if min_precedence >= _MAX_PRECEDENCE:
        return _parse_with(stream)
    left = _parse_operators(stream, min_precedence + 1)
    while stream.current.kind == "SYMBOL":
        spec = BINARY_OPERATORS.get(stream.current.text)
        if spec is None or spec[1] != min_precedence:
            break
        stream.advance()
        right = _parse_operators(stream, min_precedence + 1)
        left = App(App(Prim(spec[0]), left), right)
    return left


def _parse_with(stream: TokenStream) -> Expr:
    expr = _parse_application(stream)
    while stream.at_keyword("with"):
        stream.advance()
        stream.eat_symbol("{")
        bindings = _parse_bindings(stream)
        stream.eat_symbol("}")
        expr = RuleApp(expr, bindings)
    return expr


def _parse_application(stream: TokenStream) -> Expr:
    expr = _parse_postfix(stream)
    while _at_atom(stream):
        expr = App(expr, _parse_postfix(stream))
    return expr


def _bracket_starts_list_literal(stream: TokenStream) -> bool:
    """Disambiguate ``e[...]``: a bracket whose first token can only start

    an expression (a literal) is a list-literal *argument*, not a type
    application.  ``f [x]`` parses as type application; write ``f ([x])``
    to pass a list of variables."""
    after = stream.peek(1)
    if after.kind in ("INT", "STRING"):
        return True
    if after.kind == "KEYWORD" and after.text in ("True", "False"):
        return True
    if after.kind == "SYMBOL" and after.text == "]":
        return False  # `e[]` is malformed either way; let types report it
    return False


def _parse_postfix(stream: TokenStream) -> Expr:
    expr = _parse_atom(stream)
    while True:
        if stream.at_symbol("[") and not _bracket_starts_list_literal(stream):
            stream.advance()
            type_args: list[Type] = []
            while True:
                type_args.append(_parse_scheme(stream))
                if not stream.try_symbol(","):
                    break
            stream.eat_symbol("]")
            expr = TyApp(expr, tuple(type_args))
        elif stream.at_symbol(".") and stream.peek(1).kind == "LIDENT":
            stream.advance()
            expr = Project(expr, stream.advance().text)
        else:
            return expr


def _at_atom(stream: TokenStream) -> bool:
    token = stream.current
    if token.kind in ("INT", "STRING", "LIDENT", "UIDENT"):
        return True
    if token.kind == "KEYWORD" and token.text in ("True", "False", "rule"):
        return True
    return token.kind == "SYMBOL" and token.text in ("(", "[", "?", "#")


def _parse_atom(stream: TokenStream) -> Expr:
    token = stream.current
    if token.kind == "INT":
        stream.advance()
        return IntLit(int(token.text))
    if token.kind == "STRING":
        stream.advance()
        return StrLit(token.text)
    if stream.at_keyword("True"):
        stream.advance()
        return BoolLit(True)
    if stream.at_keyword("False"):
        stream.advance()
        return BoolLit(False)
    if stream.at_keyword("rule"):
        stream.advance()
        stream.eat_symbol("(")
        rho = _parse_scheme(stream)
        stream.eat_symbol(",")
        body = _parse_expr(stream)
        stream.eat_symbol(")")
        return RuleAbs(rho, body)
    if token.kind == "LIDENT":
        stream.advance()
        return Var(token.text)
    if stream.try_symbol("#"):
        name = stream.eat("LIDENT").text
        if name not in PRIMS:
            raise ParseError(f"unknown primitive #{name}", token.line, token.column)
        return Prim(name)
    if stream.try_symbol("?"):
        if stream.try_symbol("("):
            rho = _parse_scheme(stream)
            stream.eat_symbol(")")
            return Query(rho)
        return Query(_parse_atype(stream))
    if token.kind == "UIDENT":
        return _parse_record(stream)
    if stream.try_symbol("("):
        first = _parse_expr(stream)
        if stream.try_symbol(","):
            second = _parse_expr(stream)
            stream.eat_symbol(")")
            return PairE(first, second)
        stream.eat_symbol(")")
        return first
    if stream.try_symbol("["):
        elems: list[Expr] = []
        if not stream.at_symbol("]"):
            while True:
                elems.append(_parse_expr(stream))
                if not stream.try_symbol(","):
                    break
        stream.eat_symbol("]")
        return ListLit(tuple(elems))
    raise stream.error("expected a core expression")


def _parse_record(stream: TokenStream) -> Expr:
    iface = stream.eat("UIDENT").text
    type_args: list[Type] = []
    if stream.try_symbol("["):
        while True:
            type_args.append(_parse_scheme(stream))
            if not stream.try_symbol(","):
                break
        stream.eat_symbol("]")
    stream.eat_symbol("{")
    fields: list[tuple[str, Expr]] = []
    while True:
        name = stream.eat("LIDENT").text
        stream.eat_symbol("=")
        fields.append((name, _parse_expr(stream)))
        if not stream.try_symbol(","):
            break
    stream.eat_symbol("}")
    return Record(iface, tuple(type_args), tuple(fields))
