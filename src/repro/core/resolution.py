"""Type-directed resolution ``Delta |-r rho`` (paper rule ``TyRes``).

The unified resolution rule of section 3.2 subsumes:

* *simple resolution* -- a simple type promotes to ``forall.{} => tau``
  and the matched rule's entire context is resolved recursively;
* *rule resolution* -- a queried rule type whose context coincides with
  the matched rule's context requires no recursion;
* *partial resolution* -- the novel middle ground: the part
  ``rho-bar' - rho-bar`` of the matched context not assumed by the query
  is resolved recursively, the rest is abstracted over.

``resolve`` produces a full :class:`Derivation` tree rather than a bare
yes/no.  The same tree drives the type checker (which only needs success),
the elaborator (rule ``TrRes`` reads evidence off the tree) and the
metatheory tests (which replay the tree against the logical
interpretation).

Two strategies are provided:

* ``SYNTACTIC`` -- the paper's rule ``TyRes``: the environment stays fixed
  throughout recursive resolution.  Simpler to reason about; the default.
* ``EXTENDING`` -- the stronger variant displayed (and rejected) in
  section 3.2, which adds the queried context ``rho-bar`` to the
  environment for recursive steps.  It proves ``{A}=>B`` from ``{C}=>B``
  and ``{A}=>C``, which ``SYNTACTIC`` cannot.  NOTE (erratum): the
  paper's accompanying example ``Char; {Char}=>Int; {Bool}=>Int |-r
  {Char}=>Int`` still fails under the *displayed* rule, because lookup
  commits to the lexically nearest head match (``{Bool}=>Int``); making
  it succeed additionally requires backtracking over candidate rules.
* ``BACKTRACKING`` -- extending *plus* backtracking across all matching
  rules in nearness order: the closest executable approximation of the
  "fully semantic" resolution (``Delta-dagger |= rho-dagger``) that the
  paper describes and rejects for its unpredictability and cost.  It does
  resolve the erratum example above.  Implemented for experiment E9.
* ``CORECURSIVE`` -- the paper's ``TyRes`` search extended with cycle
  detection (Farka, Komendantskaya & Hammond's corecursive type-class
  resolution): when a recursive premise is alpha-equivalent to a goal
  already on the search stack, the proof closes the loop with a
  :class:`ByCorecursion` back-reference instead of burning fuel to
  divergence, and the elaborator reads the marked ancestor back as a
  System F ``fix`` (mu-bound) evidence term.  A *guardedness* check
  keeps this sound: a cycle is only closed when at least one rule step
  on the loop is productive -- it discharges additional premises
  (context size > 1) or moves to a structurally different goal --
  otherwise the cycle is reported as divergence, exactly like fuel
  exhaustion (see :func:`derivation_cycles_guarded` and
  docs/RESOLUTION.md).
* ``SUBTYPING`` -- the syntactic search *cross-validated* by the
  intersection-subtyping backend (:mod:`repro.subtyping`, after
  Marntirosian et al. 2020): every top-level query is additionally
  decided as a modus-ponens subtyping check on the environment's
  intersection type.  Decision only -- evidence and elaboration still
  come from the syntactic engine, so verdicts and derivations are
  observably identical to ``SYNTACTIC``; the ``subtyping_checks`` and
  ``subtyping_disagreements_guarded`` counters (:mod:`repro.obs`)
  record that the check ran and whether it ever contradicted the
  syntactic engine in the direction theory forbids.

Recursive resolution may diverge (appendix "Termination of Resolution");
a fuel bound turns divergence into :class:`ResolutionDivergenceError`.
The static termination conditions live in :mod:`repro.core.termination`.

Resolution is memoized: every :class:`Resolver` owns a
:class:`~repro.core.cache.ResolutionCache` (pass ``cache=None`` to
disable) keyed on the environment's structural fingerprint, its payload
witness, the query's canonical key, and the strategy/policy pair.  Cache
discipline -- fuel monotonicity, never caching divergence, evidence
identity -- is documented in :mod:`repro.core.cache`; per-query counters
and an optional trace stream live in :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from ..errors import (
    DeadlineExceededError,
    NoMatchingRuleError,
    OverlappingRulesError,
    ResolutionDivergenceError,
)
from ..obs import active_stats, collecting
from ..obs.stats import (
    ResolutionStats,
    record_corec_cycle,
    record_corec_guard_rejection,
    record_subtyping_disagreement_guarded,
)
from ..obs.trace import CACHE_HIT, CACHE_MISS, FAILURE, QUERY, SUCCESS, Tracer
from .cache import ResolutionCache
from .env import ImplicitEnv, LookupResult, OverlapPolicy, RuleEntry
from .types import Type, canonical_key, promote

DEFAULT_FUEL = 512


class ResolutionStrategy(enum.Enum):
    """Which recursive-resolution rule to use (see module docstring)."""

    SYNTACTIC = "syntactic"
    EXTENDING = "extending"
    BACKTRACKING = "backtracking"
    CORECURSIVE = "corecursive"
    SUBTYPING = "subtyping"


@dataclass(frozen=True, eq=False)
class Assumption:
    """Evidence-less assumption of one element of a query's context.

    Compared by identity: each :class:`Derivation` owns fresh tokens so
    that nested partial resolutions cannot confuse their assumption
    binders.  The elaborator maps tokens to the lambda-bound evidence
    variables of the ``TrRes`` output.
    """

    rho: Type
    index: int


class Premise:
    """How one element of the matched rule's context was discharged."""

    __slots__ = ()


@dataclass(frozen=True)
class ByAssumption(Premise):
    """Discharged by the query's own context (no recursion; the

    ``rho_i in rho-bar`` branch of ``TyRes``/``TrRes``)."""

    token: Assumption


@dataclass(frozen=True)
class ByResolution(Premise):
    """Discharged by a recursive resolution (``Delta |-r rho_i``)."""

    derivation: "Derivation"


@dataclass(frozen=True, eq=False)
class CycleToken:
    """Identity-compared binder for a corecursive back-reference.

    Minted once per cycle *head* (the ancestor goal some descendant
    premise loops back to) and shared by every :class:`ByCorecursion`
    premise that closes onto it; the head derivation carries the same
    token in its ``cycle`` field.  The elaborator maps tokens to the
    ``fix``-bound evidence variables of the mu-term it emits.
    """

    rho: Type


@dataclass(frozen=True)
class ByCorecursion(Premise):
    """Discharged by a back-reference to an alpha-equivalent ancestor
    goal still under resolution (the ``CORECURSIVE`` strategy's cycle
    closure): the premise's evidence is the ancestor's own ``fix``-bound
    evidence variable."""

    token: CycleToken


@dataclass(frozen=True)
class Derivation:
    """A successful derivation of ``Delta |-r rho``.

    ``premises`` is aligned with ``lookup.context``: premise *i* discharges
    the *i*-th element of the instantiated matched context, so the
    elaborator can apply the looked-up evidence to arguments in order.

    ``cycle`` is non-``None`` exactly when this node is the head of a
    corecursive cycle: some :class:`ByCorecursion` premise in the subtree
    carries the same token, and the node's evidence is wrapped in a
    System F ``fix`` binder.
    """

    query: Type
    tvars: tuple[str, ...]
    context: tuple[Type, ...]
    head: Type
    lookup: LookupResult
    assumptions: tuple[Assumption, ...]
    premises: tuple[Premise, ...]
    cycle: CycleToken | None = None

    def size(self) -> int:
        """Number of lookup steps in the whole tree (bench metric)."""
        return 1 + sum(
            p.derivation.size() for p in self.premises if isinstance(p, ByResolution)
        )


# ---------------------------------------------------------------------------
# Corecursive search machinery (the CORECURSIVE strategy).
# ---------------------------------------------------------------------------

#: Global guardedness toggle.  Test-only: the ``corecursive`` fuzz
#: oracle's fault arm disables the engine-internal check to prove it is
#: load-bearing (an unguarded engine accepts non-productive cycles the
#: static re-validation then rejects).
_corec_guard_enabled = True


def set_corec_guard(enabled: bool) -> bool:
    """Enable/disable the corecursive guardedness check; returns the
    previous setting.  Production code never calls this."""
    global _corec_guard_enabled
    previous = _corec_guard_enabled
    _corec_guard_enabled = bool(enabled)
    return previous


@contextmanager
def corec_guard(enabled: bool):
    """Lexically scoped :func:`set_corec_guard`."""
    previous = set_corec_guard(enabled)
    try:
        yield
    finally:
        set_corec_guard(previous)


class _OpenGoal:
    """One goal on the corecursive search stack.

    ``productive_step`` records whether the rule step that *led here*
    from the parent goal was productive (discharged additional premises
    or moved to a structurally different goal); the guardedness of a
    cycle is the disjunction of the step flags along its loop.
    ``escaped`` collects tokens bound at shallower stack entries that
    this goal's subtree references -- a derivation with escaped tokens
    is open (its meaning depends on the enclosing proof) and must never
    be cached.
    """

    __slots__ = ("key", "rho", "productive_step", "token", "escaped")

    def __init__(self, key: tuple, rho: Type, productive_step: bool):
        self.key = key
        self.rho = rho
        self.productive_step = productive_step
        self.token: CycleToken | None = None
        self.escaped: set[CycleToken] = set()


def derivation_cycles_guarded(derivation: Derivation) -> bool:
    """Statically re-validate the guardedness of every cycle in a tree.

    Walks the finished derivation and checks, for each
    :class:`ByCorecursion` premise, that at least one rule step on the
    path from its binding cycle head down to the back-reference is
    productive (instantiated context longer than one, or a child goal
    not alpha-equal to the instantiated head).  This is the same
    criterion the engine enforces during search, recomputed from the
    tree alone -- the ``corecursive`` fuzz oracle uses it as an
    independent check that does *not* depend on the engine-internal
    toggle, so a guard-disabled engine cannot sneak an unguarded proof
    past the harness.  Also ``False`` for malformed trees whose
    back-reference names no enclosing cycle head.
    """
    work: list[tuple[Derivation, dict[int, bool]]] = [(derivation, {})]
    while work:
        d, flags = work.pop()
        if d.cycle is not None:
            flags = dict(flags)
            flags[id(d.cycle)] = False
        ctx_many = len(d.lookup.context) > 1
        head_key = canonical_key(d.lookup.head)
        for premise in d.premises:
            if isinstance(premise, ByCorecursion):
                productive = (
                    ctx_many or canonical_key(premise.token.rho) != head_key
                )
                if not flags.get(id(premise.token), False) and not productive:
                    return False
                if id(premise.token) not in flags:
                    return False
            elif isinstance(premise, ByResolution):
                child = premise.derivation
                productive = (
                    ctx_many or canonical_key(child.query) != head_key
                )
                work.append(
                    (child, {t: f or productive for t, f in flags.items()})
                )
    return True


@dataclass(frozen=True)
class Resolver:
    """Configured resolution engine.

    ``cache``, ``stats`` and ``tracer`` are operational attachments, not
    semantics: they are excluded from equality/hash, and the differential
    test harness asserts that cached and cache-disabled resolvers agree
    on every derivation and every failure.
    """

    policy: OverlapPolicy = OverlapPolicy.REJECT
    strategy: ResolutionStrategy = ResolutionStrategy.SYNTACTIC
    fuel: int = DEFAULT_FUEL
    #: Head-constructor indexed lookup: ``True``/``False`` force it on or
    #: off for this resolver, ``None`` defers to the global
    #: :func:`repro.core.env.set_indexing` toggle.  Operational, not
    #: semantic (indexed and naive lookup are observably equivalent), so
    #: excluded from equality like the other attachments below.
    use_index: bool | None = field(default=None, compare=False)
    #: Compiled discrimination-trie lookup (PR 6): ``True``/``False``
    #: force it on or off, ``None`` defers to the global
    #: :func:`repro.core.env.set_compiling` toggle.  Operational, not
    #: semantic -- compiled and interpreted lookup are observably
    #: equivalent (the ``compiled`` fuzz oracle's claim) -- so excluded
    #: from equality like ``use_index``.
    use_compiled: bool | None = field(default=None, compare=False)
    #: Wall-clock deadline as a :func:`time.monotonic` timestamp, or
    #: ``None`` for no deadline.  Checked on every fuel-consuming
    #: resolution step, so a stuck proof search surfaces as a structured
    #: :class:`~repro.errors.DeadlineExceededError` instead of hanging a
    #: server worker.  Like fuel exhaustion, the outcome depends on the
    #: budget rather than the query: it is never cached and propagates
    #: through every strategy (including backtracking).  Operational, not
    #: semantic, hence excluded from equality.
    deadline: float | None = field(default=None, compare=False)
    #: Per-resolver derivation memo; ``None`` disables caching entirely.
    cache: ResolutionCache | None = field(
        default_factory=ResolutionCache, compare=False
    )
    #: Counters for this resolver's queries; ``None`` falls back to the
    #: ambient :func:`repro.obs.collecting` scope, if any.
    stats: ResolutionStats | None = field(default=None, compare=False)
    #: Optional trace-event stream (``repro --trace``).
    tracer: Tracer | None = field(default=None, compare=False)

    def resolve(self, env: ImplicitEnv, rho: Type) -> Derivation:
        """Derive ``Delta |-r rho`` or raise a :class:`ResolutionError`."""
        import sys

        # Each fuel unit costs a handful of Python frames; make sure the
        # fuel bound fires before the interpreter's recursion limit does.
        needed = self.fuel * 12 + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)
        if self.stats is not None and active_stats() is not self.stats:
            with collecting(self.stats):
                return self._resolve_query(env, rho)
        return self._resolve_query(env, rho)

    def _resolve_query(self, env: ImplicitEnv, rho: Type) -> Derivation:
        stats = active_stats()
        if stats is not None:
            stats.queries += 1
        if self.strategy is ResolutionStrategy.CORECURSIVE:
            return self._resolve(env, rho, self.fuel, stack=[])
        if self.strategy is ResolutionStrategy.SUBTYPING:
            return self._resolve_with_subtyping_check(env, rho)
        return self._resolve(env, rho, self.fuel)

    def _resolve_with_subtyping_check(
        self, env: ImplicitEnv, rho: Type
    ) -> Derivation:
        """The ``SUBTYPING`` strategy: decision by modus-ponens subtyping,
        evidence by the syntactic engine.

        The subtyping backend answers the check-style question; the
        syntactic search then produces (or denies) the derivation as
        usual, so the strategy's observable verdicts match ``SYNTACTIC``
        exactly.  The two are compared where theory makes a claim --
        resolution success implies subtyping (Marntirosian et al. 2020)
        -- and a definitive subtyping denial against a syntactic proof
        bumps ``subtyping_disagreements_guarded`` while the syntactic
        answer is kept.  Budget-dependent outcomes (fuel divergence,
        deadlines, an ``EXHAUSTED`` subtyping verdict) are outside the
        comparable fragment and propagate uncompared.
        """
        from ..subtyping import SubtypingVerdict, decide

        result = decide(env, rho)
        try:
            derivation = self._resolve(env, rho, self.fuel)
        except (ResolutionDivergenceError, DeadlineExceededError):
            raise  # budget outcome on the evidence side: not comparable
        except (NoMatchingRuleError, OverlappingRulesError):
            # Subtyping proving strictly more is the *expected*
            # over-approximation (no nearness, no overlap policy in an
            # intersection); only the forbidden direction is alarming.
            raise
        if result.verdict is SubtypingVerdict.FAILS:
            record_subtyping_disagreement_guarded()
        return derivation

    def resolvable(self, env: ImplicitEnv, rho: Type) -> bool:
        from ..errors import ResolutionError

        try:
            self.resolve(env, rho)
        except ResolutionError:
            return False
        return True

    def _resolve(
        self,
        env: ImplicitEnv,
        rho: Type,
        fuel: int,
        depth: int = 0,
        stack: list[_OpenGoal] | None = None,
        step_productive: bool = False,
    ) -> Derivation:
        if fuel <= 0:
            raise ResolutionDivergenceError(
                f"resolution exceeded fuel while resolving {rho}; "
                "the rule environment likely violates the termination condition"
            )
        deadline = self.deadline
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"resolution exceeded its deadline while resolving {rho}"
            )
        stats = active_stats()
        if stats is not None:
            stats.resolve_steps += 1
            if depth > stats.max_depth:
                stats.max_depth = depth
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(QUERY, depth, str(rho))

        cache = self.cache
        key: tuple | None = None
        if cache is not None:
            key = cache.key_for(env, rho, self.strategy, self.policy)
            entry = cache.get(key, fuel)
            if entry is not None and stack and not entry.is_success:
                # An open ancestor goal could rescue this failure by a
                # corecursive cycle; recompute in this proof context.
                entry = None
            if entry is not None:
                if stats is not None:
                    stats.cache_hits += 1
                if tracer is not None:
                    tracer.emit(
                        CACHE_HIT,
                        depth,
                        str(rho),
                        "derivation" if entry.is_success else "failure",
                    )
                if entry.is_success:
                    return entry.outcome
                raise entry.outcome
            if stats is not None:
                stats.cache_misses += 1
            if tracer is not None:
                tracer.emit(CACHE_MISS, depth, str(rho))

        goal: _OpenGoal | None = None
        if stack is not None:
            goal = _OpenGoal(canonical_key(rho), rho, step_productive)
            stack.append(goal)
        try:
            try:
                derivation = self._resolve_step(env, rho, fuel, depth, stack)
            finally:
                if goal is not None:
                    stack.pop()
        except (ResolutionDivergenceError, DeadlineExceededError):
            raise  # never cached: the outcome depends on the budget
        except (NoMatchingRuleError, OverlappingRulesError) as exc:
            # Under the corecursive strategy a non-root failure is only
            # valid relative to the open goals above it (a different
            # proof context could rescue it with a cycle), so only
            # root-level failures enter the cache.
            if cache is not None and not stack:
                cache.put_failure(key, exc, env, fuel)
            if tracer is not None:
                tracer.emit(FAILURE, depth, str(rho), type(exc).__name__)
            raise
        if goal is not None and goal.token is not None:
            derivation = replace(derivation, cycle=goal.token)
        # A derivation whose subtree references a still-open ancestor
        # token is an open proof fragment; it must not be cached (its
        # meaning depends on the enclosing proof).
        if cache is not None and (goal is None or not goal.escaped):
            cache.put_success(key, derivation, env, fuel)
        if tracer is not None:
            tracer.emit(SUCCESS, depth, str(rho))
        return derivation

    def _resolve_step(
        self,
        env: ImplicitEnv,
        rho: Type,
        fuel: int,
        depth: int,
        stack: list[_OpenGoal] | None = None,
    ) -> Derivation:
        """One uncached application of the unified resolution rule."""
        tvars, context, head = promote(rho)
        assumptions = tuple(Assumption(r, i) for i, r in enumerate(context))
        recurse_env = env
        if (
            self.strategy in (ResolutionStrategy.EXTENDING, ResolutionStrategy.BACKTRACKING)
            and assumptions
        ):
            recurse_env = env.push(
                RuleEntry(tok.rho, payload=tok) for tok in assumptions
            )
        if self.strategy is ResolutionStrategy.BACKTRACKING:
            return self._resolve_backtracking(
                env, recurse_env, rho, tvars, context, head, assumptions, fuel, depth
            )
        result = env.lookup(
            head, self.policy, use_index=self.use_index, use_compiled=self.use_compiled
        )
        premises = self._discharge(
            recurse_env, result, assumptions, fuel, depth, stack
        )
        return Derivation(
            query=rho,
            tvars=tvars,
            context=context,
            head=head,
            lookup=result,
            assumptions=assumptions,
            premises=premises,
        )

    def _discharge(
        self,
        recurse_env: ImplicitEnv,
        result: "LookupResult",
        assumptions: tuple[Assumption, ...],
        fuel: int,
        depth: int = 0,
        stack: list[_OpenGoal] | None = None,
    ) -> tuple[Premise, ...]:
        """Discharge each element of the matched rule's context (TyRes)."""
        by_key = {canonical_key(tok.rho): tok for tok in assumptions}
        step_many = len(result.context) > 1
        head_key = canonical_key(result.head) if stack is not None else None
        premises: list[Premise] = []
        for rho_i in result.context:
            token = by_key.get(canonical_key(rho_i))
            if token is not None:
                premises.append(ByAssumption(token))
                continue
            if stack is not None:
                key_i = canonical_key(rho_i)
                productive = step_many or key_i != head_key
                cycle = self._close_cycle(rho_i, key_i, productive, stack)
                if cycle is not None:
                    premises.append(cycle)
                    continue
                premises.append(
                    ByResolution(
                        self._resolve(
                            recurse_env,
                            rho_i,
                            fuel - 1,
                            depth + 1,
                            stack=stack,
                            step_productive=productive,
                        )
                    )
                )
            else:
                premises.append(
                    ByResolution(
                        self._resolve(recurse_env, rho_i, fuel - 1, depth + 1)
                    )
                )
        return tuple(premises)

    def _close_cycle(
        self,
        rho_i: Type,
        key_i: tuple,
        step_productive: bool,
        stack: list[_OpenGoal],
    ) -> ByCorecursion | None:
        """Close a corecursive cycle if ``rho_i`` repeats an open goal.

        Returns ``None`` when no ancestor goal on the search stack is
        alpha-equivalent to ``rho_i`` (the caller recurses normally).
        An unguarded cycle -- no productive step anywhere on the loop --
        is divergence: closing it would produce evidence no lazy
        unfolding can justify (``fix x. x``).
        """
        for j in range(len(stack) - 1, -1, -1):
            goal = stack[j]
            if goal.key != key_i:
                continue
            guarded = step_productive or any(
                g.productive_step for g in stack[j + 1 :]
            )
            if not guarded and _corec_guard_enabled:
                record_corec_guard_rejection()
                raise ResolutionDivergenceError(
                    f"resolution cycle at {rho_i} is not guarded (no "
                    "productive step on the loop); corecursive resolution "
                    "treats it as divergent"
                )
            if goal.token is None:
                goal.token = CycleToken(goal.rho)
            for below in stack[j + 1 :]:
                below.escaped.add(goal.token)
            record_corec_cycle()
            return ByCorecursion(goal.token)
        return None

    def _resolve_backtracking(
        self,
        env: ImplicitEnv,
        recurse_env: ImplicitEnv,
        rho: Type,
        tvars: tuple[str, ...],
        context: tuple[Type, ...],
        head: Type,
        assumptions: tuple[Assumption, ...],
        fuel: int,
        depth: int = 0,
    ) -> Derivation:
        from ..errors import ResolutionError

        last_error: ResolutionError | None = None
        for result in recurse_env.lookup_all(
            head, use_index=self.use_index, use_compiled=self.use_compiled
        ):
            try:
                premises = self._discharge(
                    recurse_env, result, assumptions, fuel, depth
                )
            except ResolutionError as exc:
                if isinstance(exc, (ResolutionDivergenceError, DeadlineExceededError)):
                    raise
                last_error = exc
                continue
            return Derivation(
                query=rho,
                tvars=tvars,
                context=context,
                head=head,
                lookup=result,
                assumptions=assumptions,
                premises=premises,
            )
        if last_error is not None:
            raise last_error
        raise NoMatchingRuleError(
            f"no rule matching {head} in the implicit environment"
        )


_DEFAULT = Resolver()
_UNSET: ResolutionCache | None = ResolutionCache(max_entries=1)  # sentinel


def resolve(
    env: ImplicitEnv,
    rho: Type,
    *,
    policy: OverlapPolicy = OverlapPolicy.REJECT,
    strategy: ResolutionStrategy = ResolutionStrategy.SYNTACTIC,
    fuel: int = DEFAULT_FUEL,
    use_index: bool | None = None,
    use_compiled: bool | None = None,
    deadline: float | None = None,
    cache: ResolutionCache | None = _UNSET,
    stats: ResolutionStats | None = None,
    tracer: Tracer | None = None,
) -> Derivation:
    """Functional facade over :class:`Resolver`.

    Default-configured calls share one module-level resolver (and hence
    one derivation cache), so repeated queries memoize across calls;
    evidence identity is still guaranteed by the payload witness in the
    cache key.  Pass ``cache=None`` to force uncached resolution.
    """
    if (
        cache is _UNSET
        and stats is None
        and tracer is None
        and use_index is None
        and use_compiled is None
        and deadline is None
        and (policy, strategy, fuel)
        == (_DEFAULT.policy, _DEFAULT.strategy, _DEFAULT.fuel)
    ):
        return _DEFAULT.resolve(env, rho)
    if cache is _UNSET:
        cache = ResolutionCache()
    return Resolver(
        policy=policy,
        strategy=strategy,
        fuel=fuel,
        use_index=use_index,
        use_compiled=use_compiled,
        deadline=deadline,
        cache=cache,
        stats=stats,
        tracer=tracer,
    ).resolve(env, rho)


def resolvable(env: ImplicitEnv, rho: Type, **kwargs) -> bool:
    from ..errors import ResolutionError

    try:
        resolve(env, rho, **kwargs)
    except ResolutionError:
        return False
    return True
