"""The polymorphic type system of lambda_=> (Fig. 1 of the paper).

Implements the judgment ``Gamma | Delta |- e : tau`` including the
gray-shaded side conditions:

* ``unambiguous(rho)`` at rule abstractions and queries -- every
  quantified variable must occur in the rule head, recursively;
* ``no_overlap`` -- enforced inside environment lookup
  (:mod:`repro.core.env`), surfacing as :class:`OverlappingRulesError`.

The checker is parameterised by a :class:`Resolver`, so the companion
material's most-specific overlap policy and the stronger ``EXTENDING``
resolution strategy can be swapped in without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import AmbiguousRuleTypeError, TypecheckError
from ..obs import collecting
from ..obs.stats import ResolutionStats
from .env import ImplicitEnv, RuleEntry
from .prims import prim_spec
from .resolution import Resolver
from .subst import zip_subst, subst_type
from .terms import (
    App,
    BoolLit,
    EMPTY_SIGNATURE,
    Expr,
    If,
    IntLit,
    Lam,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    Signature,
    StrLit,
    TyApp,
    Var,
)
from .types import (
    BOOL,
    INT,
    RuleType,
    STRING,
    TCon,
    TFun,
    Type,
    canonical_key,
    ftv,
    list_of,
    pair,
    rule,
    types_alpha_eq,
)


def unambiguous(rho: Type) -> bool:
    """The ``unambiguous`` condition of section 3.3.

    All quantified variables of a rule type must occur in its head, and
    the condition holds recursively for every context element.
    """
    if not isinstance(rho, RuleType):
        return True
    if not set(rho.tvars) <= ftv(rho.head):
        return False
    return all(unambiguous(r) for r in rho.context) and unambiguous(rho.head)


def require_unambiguous(rho: Type, what: str) -> None:
    if not unambiguous(rho):
        raise AmbiguousRuleTypeError(
            f"{what} {rho} is ambiguous: a quantified variable does not "
            "occur in the rule head"
        )


@dataclass(frozen=True)
class TypeChecker:
    """The judgment ``Gamma | Delta |- e : tau`` as a reusable object."""

    signature: Signature = field(default_factory=Signature)
    resolver: Resolver = field(default_factory=Resolver)
    #: Opt-in conservative coherence analysis for queries (extended report
    #: section "Runtime Errors and Coherence Failures"); see
    #: :func:`repro.core.coherence.check_query_coherence` for why it is
    #: conservative and therefore not on by default.
    strict_coherence: bool = False
    #: Check well-kindedness (constructor arities) of every annotation.
    kind_check: bool = True
    #: Optional counters for every resolution this checker performs
    #: (``repro check --stats``); see :mod:`repro.obs`.
    stats: ResolutionStats | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        from .kinds import KindChecker

        checker = KindChecker.for_signature(self.signature)
        if self.kind_check:
            checker.check_signature(self.signature)
        object.__setattr__(self, "_kinds", checker)

    def _check_kind(self, tau: Type) -> None:
        if self.kind_check:
            self._kinds.check(tau)  # type: ignore[attr-defined]

    def check_program(self, e: Expr) -> Type:
        """Type a closed program (empty ``Gamma`` and ``Delta``)."""
        with collecting(self.stats):
            return self.check(e, {}, ImplicitEnv.empty())

    def check(self, e: Expr, gamma: Mapping[str, Type], delta: ImplicitEnv) -> Type:
        match e:
            case IntLit(_):
                return INT
            case BoolLit(_):
                return BOOL
            case StrLit(_):
                return STRING
            case Var(name):
                if name not in gamma:
                    raise TypecheckError(f"unbound variable {name!r}")
                return gamma[name]
            case Prim(name):
                try:
                    return prim_spec(name).rho
                except KeyError as exc:
                    raise TypecheckError(str(exc)) from exc
            case Lam(var, var_type, body):
                self._check_kind(var_type)
                inner = dict(gamma)
                inner[var] = var_type
                return TFun(var_type, self.check(body, inner, delta))
            case App(fn, arg):
                fn_type = self.check(fn, gamma, delta)
                if not isinstance(fn_type, TFun):
                    raise TypecheckError(
                        f"application of non-function: {fn} has type {fn_type}"
                    )
                arg_type = self.check(arg, gamma, delta)
                if not types_alpha_eq(fn_type.arg, arg_type):
                    raise TypecheckError(
                        f"argument type mismatch: expected {fn_type.arg}, "
                        f"got {arg_type} in {e}"
                    )
                return fn_type.res
            case Query(rho):
                self._check_kind(rho)
                require_unambiguous(rho, "queried type")
                self.resolver.resolve(delta, rho)  # TyQuery -> TyRes
                if self.strict_coherence:
                    from .coherence import check_query_coherence

                    check_query_coherence(delta, rho, self.resolver.policy)
                return rho
            case RuleAbs(rho, body):
                return self._check_rule_abs(rho, body, gamma, delta)
            case TyApp(expr, type_args):
                return self._check_ty_app(expr, type_args, gamma, delta)
            case RuleApp(expr, args):
                return self._check_rule_app(expr, args, gamma, delta)
            case If(cond, then, orelse):
                cond_type = self.check(cond, gamma, delta)
                if not types_alpha_eq(cond_type, BOOL):
                    raise TypecheckError(f"if-condition has type {cond_type}, not Bool")
                then_type = self.check(then, gamma, delta)
                else_type = self.check(orelse, gamma, delta)
                if not types_alpha_eq(then_type, else_type):
                    raise TypecheckError(
                        f"if-branches disagree: {then_type} vs {else_type}"
                    )
                return then_type
            case PairE(first, second):
                return pair(
                    self.check(first, gamma, delta), self.check(second, gamma, delta)
                )
            case ListLit(elems, elem_type):
                return self._check_list(elems, elem_type, gamma, delta)
            case Record(iface, type_args, fields):
                return self._check_record(iface, type_args, fields, gamma, delta)
            case Project(expr, fname):
                return self._check_project(expr, fname, gamma, delta)
        raise TypecheckError(f"cannot type expression {e!r}")

    # -- TyRule --------------------------------------------------------

    def _check_rule_abs(
        self, rho: Type, body: Expr, gamma: Mapping[str, Type], delta: ImplicitEnv
    ) -> Type:
        self._check_kind(rho)
        if not isinstance(rho, RuleType):
            raise TypecheckError(
                f"rule abstraction requires a rule type, got {rho} "
                "(degenerate rules are plain expressions)"
            )
        require_unambiguous(rho, "rule type")
        clash = set(rho.tvars) & self._env_ftv(gamma, delta)
        if clash:
            raise TypecheckError(
                f"quantified variable(s) {sorted(clash)} of {rho} already occur "
                "free in the environment (rename the binder apart)"
            )
        inner_delta = delta.push(RuleEntry(r) for r in rho.context)
        body_type = self.check(body, gamma, inner_delta)
        if not types_alpha_eq(body_type, rho.head):
            raise TypecheckError(
                f"rule body has type {body_type}, but the rule type promises "
                f"{rho.head}"
            )
        return rho

    # -- TyInst --------------------------------------------------------

    def _check_ty_app(
        self,
        expr: Expr,
        type_args: tuple[Type, ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> Type:
        expr_type = self.check(expr, gamma, delta)
        for tau in type_args:
            self._check_kind(tau)
        if not isinstance(expr_type, RuleType) or not expr_type.tvars:
            raise TypecheckError(
                f"type application of non-polymorphic expression: {expr} "
                f"has type {expr_type}"
            )
        theta = zip_subst(expr_type.tvars, type_args)
        return rule(
            subst_type(theta, expr_type.head),
            tuple(subst_type(theta, r) for r in expr_type.context),
        )

    # -- TyRApp --------------------------------------------------------

    def _check_rule_app(
        self,
        expr: Expr,
        args: tuple[tuple[Expr, Type], ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> Type:
        expr_type = self.check(expr, gamma, delta)
        if not isinstance(expr_type, RuleType) or expr_type.tvars:
            raise TypecheckError(
                f"rule application requires a monomorphic rule type, got "
                f"{expr_type} (instantiate with e[tau-bar] first)"
            )
        supplied: dict[tuple, Type] = {}
        for arg_expr, arg_rho in args:
            self._check_kind(arg_rho)
            key = canonical_key(arg_rho)
            if key in supplied:
                raise TypecheckError(
                    f"duplicate evidence for {arg_rho} in rule application"
                )
            supplied[key] = arg_rho
            actual = self.check(arg_expr, gamma, delta)
            if not types_alpha_eq(actual, arg_rho):
                raise TypecheckError(
                    f"evidence {arg_expr} has type {actual}, annotated {arg_rho}"
                )
        required = {canonical_key(r) for r in expr_type.context}
        if required != set(supplied):
            missing = [str(r) for r in expr_type.context if canonical_key(r) not in supplied]
            extra = [str(supplied[k]) for k in supplied if k not in required]
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"extraneous {extra}")
            raise TypecheckError(
                f"rule application does not supply exactly the context of "
                f"{expr_type}: " + "; ".join(detail)
            )
        return expr_type.head

    # -- Extensions ----------------------------------------------------

    def _check_list(
        self,
        elems: tuple[Expr, ...],
        elem_type: Type | None,
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> Type:
        if elem_type is None:
            if not elems:
                raise TypecheckError("empty list literal needs an element type")
            elem_type = self.check(elems[0], gamma, delta)
        for el in elems:
            actual = self.check(el, gamma, delta)
            if not types_alpha_eq(actual, elem_type):
                raise TypecheckError(
                    f"list element {el} has type {actual}, expected {elem_type}"
                )
        return list_of(elem_type)

    def _check_record(
        self,
        iface: str,
        type_args: tuple[Type, ...],
        fields: tuple[tuple[str, Expr], ...],
        gamma: Mapping[str, Type],
        delta: ImplicitEnv,
    ) -> Type:
        decl = self.signature.get(iface)
        if decl is None:
            raise TypecheckError(f"unknown interface {iface!r}")
        if len(type_args) != len(decl.tvars):
            raise TypecheckError(
                f"interface {iface} expects {len(decl.tvars)} type argument(s), "
                f"got {len(type_args)}"
            )
        theta = zip_subst(decl.tvars, type_args)
        given = {name for name, _ in fields}
        declared = set(decl.field_names())
        if given != declared:
            raise TypecheckError(
                f"interface {iface} implementation fields {sorted(given)} do not "
                f"match declaration fields {sorted(declared)}"
            )
        for name, expr in fields:
            expected = subst_type(theta, decl.field_type(name))
            actual = self.check(expr, gamma, delta)
            if not types_alpha_eq(actual, expected):
                raise TypecheckError(
                    f"field {iface}.{name} has type {actual}, expected {expected}"
                )
        return TCon(iface, tuple(type_args))

    def _check_project(
        self, expr: Expr, fname: str, gamma: Mapping[str, Type], delta: ImplicitEnv
    ) -> Type:
        expr_type = self.check(expr, gamma, delta)
        if not isinstance(expr_type, TCon):
            raise TypecheckError(f"projection from non-record type {expr_type}")
        decl = self.signature.get(expr_type.name)
        if decl is None:
            raise TypecheckError(f"projection from non-interface type {expr_type}")
        try:
            field_type = decl.field_type(fname)
        except KeyError as exc:
            raise TypecheckError(str(exc)) from exc
        theta = zip_subst(decl.tvars, expr_type.args)
        return subst_type(theta, field_type)

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _env_ftv(gamma: Mapping[str, Type], delta: ImplicitEnv) -> set[str]:
        out: set[str] = set()
        for tau in gamma.values():
            out |= ftv(tau)
        for entry in delta.entries():
            out |= ftv(entry.rho)
        return out


def typecheck(
    e: Expr,
    *,
    signature: Signature = EMPTY_SIGNATURE,
    resolver: Resolver | None = None,
) -> Type:
    """Type a closed lambda_=> program."""
    checker = TypeChecker(signature=signature, resolver=resolver or Resolver())
    return checker.check_program(e)
