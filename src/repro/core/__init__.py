"""The lambda_=> core calculus: syntax, type system, resolution.

Public surface of the paper's Fig. 1 plus the supporting machinery
(substitution, matching unification, environments, termination and
coherence conditions, a concrete-syntax parser, and a builder DSL).
"""

from .env import ImplicitEnv, LookupResult, OverlapPolicy, RuleEntry
from .resolution import (
    Assumption,
    ByAssumption,
    ByResolution,
    Derivation,
    Resolver,
    ResolutionStrategy,
    resolvable,
    resolve,
)
from .terms import (
    App,
    BoolLit,
    EMPTY_SIGNATURE,
    Expr,
    If,
    IntLit,
    InterfaceDecl,
    Lam,
    ListLit,
    PairE,
    Prim,
    Project,
    Query,
    Record,
    RuleAbs,
    RuleApp,
    Signature,
    StrLit,
    TyApp,
    Var,
)
from .typecheck import TypeChecker, typecheck, unambiguous
from .types import (
    BOOL,
    CHAR,
    INT,
    RuleType,
    STRING,
    TCon,
    TFun,
    TVar,
    Type,
    UNIT,
    context_contains,
    context_difference,
    ftv,
    fun,
    list_of,
    pair,
    promote,
    rule,
    type_size,
    types_alpha_eq,
)

__all__ = [name for name in dir() if not name.startswith("_")]
