"""Static termination conditions for resolution (paper appendix).

Recursive resolution can diverge, e.g. with the environment
``{ {Char} => Int, {Int} => Char }`` and the query ``Int`` (the two rules
feed each other forever).  The appendix adapts the modular syntactic
restrictions used for Haskell type-class instances (the Paterson
conditions of "Understanding functional dependencies via constraint
handling rules", adapted to lambda_=>):

for every rule ``forall a-bar . {rho1 .. rhon} => tau`` made implicit,
and every context element ``rho_i`` with head ``tau_i``:

1. every free type variable occurs in ``tau_i`` no more often than in
   ``tau``;
2. ``tau_i`` is strictly smaller than ``tau`` (fewer constructors); and
3. the condition holds recursively for context elements that are
   themselves rules.

Together these make every recursive resolution step strictly decrease the
size of the queried head, so resolution terminates.  The conditions are
*modular* (per rule) and *conservative*: environments that violate them
may still terminate for particular queries, which is why the resolution
engine additionally carries a dynamic fuel bound.
"""

from __future__ import annotations

from collections import Counter

from ..errors import TerminationError
from .env import ImplicitEnv
from .types import RuleType, TCon, TFun, TVar, Type, promote, type_size


def tvar_occurrences(tau: Type) -> Counter:
    """Number of occurrences of each *free* type variable in ``tau``."""
    counter: Counter = Counter()
    _count(tau, frozenset(), counter)
    return counter


def _count(tau: Type, bound: frozenset[str], counter: Counter) -> None:
    match tau:
        case TVar(name):
            if name not in bound:
                counter[name] += 1
        case TCon(_, args):
            for a in args:
                _count(a, bound, counter)
        case TFun(arg, res):
            _count(arg, bound, counter)
            _count(res, bound, counter)
        case RuleType():
            inner = bound | frozenset(tau.tvars)
            for rho in tau.context:
                _count(rho, inner, counter)
            _count(tau.head, inner, counter)
        case _:
            raise TypeError(f"not a Type: {tau!r}")


def check_rule_termination(rho: Type) -> None:
    """Raise :class:`TerminationError` if ``rho`` violates the condition."""
    tvars, context, head = promote(rho)
    del tvars
    head_occurrences = tvar_occurrences(head)
    head_size = type_size(head)
    for rho_i in context:
        _, _, head_i = promote(rho_i)
        for name, count in tvar_occurrences(head_i).items():
            if count > head_occurrences.get(name, 0):
                raise TerminationError(
                    f"rule {rho}: context head {head_i} uses type variable "
                    f"{name} more often than the rule head {head} does"
                )
        if type_size(head_i) >= head_size:
            raise TerminationError(
                f"rule {rho}: context head {head_i} is not strictly smaller "
                f"than the rule head {head}"
            )
        # Higher-order context entries must themselves be terminating.
        if isinstance(rho_i, RuleType):
            check_rule_termination(rho_i)


def terminating_rule(rho: Type) -> bool:
    """Predicate form of :func:`check_rule_termination`."""
    try:
        check_rule_termination(rho)
    except TerminationError:
        return False
    return True


def check_env_termination(env: ImplicitEnv) -> None:
    """Check every rule of an environment (entries are checked modularly)."""
    for entry in env.entries():
        check_rule_termination(entry.rho)


def check_context_termination(context: tuple[Type, ...]) -> None:
    """Check the rules introduced by one ``implicit``/rule abstraction."""
    for rho in context:
        check_rule_termination(rho)


def terminating_env(env: ImplicitEnv) -> bool:
    try:
        check_env_termination(env)
    except TerminationError:
        return False
    return True
