"""Expression syntax of the implicit calculus (paper section 3.1).

The paper's grammar is::

    e ::= n | x | \\x:tau.e | e1 e2              (standard)
        | ?rho                                   (query)
        | |rho|.e                                (rule abstraction)
        | e[tau-bar]                             (type application)
        | e with e-bar:rho-bar                   (rule application)

As the paper notes ("In examples we may use additional syntax such as
built-in integer operators and boolean literals and types"), we extend the
expression language with the literals, conditionals, pairs, lists, records
and primitive operators that its examples and source language rely on.
None of these extensions interact with resolution; they type and evaluate
in the standard way and elaborate one-to-one into the extended System F
target.

All nodes are immutable dataclasses so terms can be shared freely between
the type checker, the elaborator and the operational semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..span import Span
from .types import Type


class Expr:
    """Base class of all implicit-calculus expressions."""

    __slots__ = ()

    def __str__(self) -> str:  # pragma: no cover - delegated
        from .pretty import pretty_expr

        return pretty_expr(self)


# ---------------------------------------------------------------------------
# Standard lambda-calculus fragment plus literals.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal ``n``."""

    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    """A boolean literal (``True``/``False`` in the paper's examples)."""

    value: bool


@dataclass(frozen=True)
class StrLit(Expr):
    """A string literal (used by the pretty-printing example, section 5)."""

    value: str


@dataclass(frozen=True)
class Var(Expr):
    """A term variable ``x``."""

    name: str


@dataclass(frozen=True)
class Lam(Expr):
    """A lambda abstraction ``\\x:tau.e``."""

    var: str
    var_type: Type
    body: Expr


@dataclass(frozen=True)
class App(Expr):
    """An application ``e1 e2``."""

    fn: Expr
    arg: Expr


# ---------------------------------------------------------------------------
# The four implicit-programming constructs.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query(Expr):
    """A query ``?rho``: fetch a value of type ``rho`` from the implicit
    environment by type-directed resolution.

    ``rho`` may be a simple type (the paper's promotion ``tau ~ {} => tau``
    is applied internally) or a full rule type, enabling higher-order and
    partial resolution.
    """

    rho: Type


@dataclass(frozen=True)
class RuleAbs(Expr):
    """A rule abstraction ``|rho|.e`` with rule type ``rho`` and body ``e``.

    Binds both the quantified type variables and the implicit context of
    ``rho`` within ``e`` (the paper's dual-role binder).
    """

    rho: Type
    body: Expr


@dataclass(frozen=True)
class TyApp(Expr):
    """An explicit type application ``e[tau-bar]``."""

    expr: Expr
    type_args: tuple[Type, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.type_args, tuple):
            object.__setattr__(self, "type_args", tuple(self.type_args))


@dataclass(frozen=True)
class RuleApp(Expr):
    """A rule application ``e with e1:rho1, ..., en:rhon``.

    Supplies explicit evidence for (part of) a rule's implicit context,
    extending the implicit environment for the rule body.
    """

    expr: Expr
    args: tuple[tuple[Expr, Type], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(tuple(a) for a in self.args))


# ---------------------------------------------------------------------------
# Conservative extensions used by the paper's examples.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class If(Expr):
    """A conditional (used e.g. in the nested-scoping example, section 2)."""

    cond: Expr
    then: Expr
    orelse: Expr


@dataclass(frozen=True)
class PairE(Expr):
    """Pair construction ``(e1, e2)``."""

    first: Expr
    second: Expr


@dataclass(frozen=True)
class ListLit(Expr):
    """A list literal ``[e1, ..., en]``.

    ``elem_type`` is required so the empty list has a unique type; for
    non-empty literals it may be ``None`` and is recovered from the first
    element during type checking.
    """

    elems: tuple[Expr, ...]
    elem_type: Type | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.elems, tuple):
            object.__setattr__(self, "elems", tuple(self.elems))


@dataclass(frozen=True)
class Prim(Expr):
    """A reference to a built-in primitive (see :mod:`repro.core.prims`).

    Primitives are ordinary (possibly polymorphic) constants; polymorphic
    ones must be instantiated with :class:`TyApp` before use, exactly like
    any other rule-typed value.
    """

    name: str


@dataclass(frozen=True)
class Record(Expr):
    """An interface implementation ``I {u1 = e1, ..., un = en}``.

    This is the record extension of the core calculus that the source
    language's interfaces (section 5) translate into.  ``type_args``
    instantiates the interface's type parameters (the source front end
    infers them; core programs state them explicitly).
    """

    iface: str
    type_args: tuple[Type, ...]
    fields: tuple[tuple[str, Expr], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.type_args, tuple):
            object.__setattr__(self, "type_args", tuple(self.type_args))
        if not isinstance(self.fields, tuple):
            object.__setattr__(self, "fields", tuple(tuple(f) for f in self.fields))


@dataclass(frozen=True)
class Project(Expr):
    """Field projection ``e.u`` out of an interface record."""

    expr: Expr
    field: str


# ---------------------------------------------------------------------------
# Interface signatures (record declarations shared by all stages).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InterfaceDecl:
    """An interface declaration ``interface I a-bar = { u : T, ... }``.

    Field types may mention the interface parameters ``tvars``.  Following
    the paper's Haskell-record convention, each field ``u : T`` also gives
    rise to a selector of type ``forall a-bar . I a-bar -> T``.
    """

    name: str
    tvars: tuple[str, ...]
    fields: tuple[tuple[str, Type], ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tvars, tuple):
            object.__setattr__(self, "tvars", tuple(self.tvars))
        if not isinstance(self.fields, tuple):
            object.__setattr__(self, "fields", tuple(tuple(f) for f in self.fields))

    def field_type(self, field: str) -> Type:
        for name, tau in self.fields:
            if name == field:
                return tau
        raise KeyError(f"interface {self.name} has no field {field!r}")

    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.fields)


class Signature:
    """A collection of interface declarations in scope for a program."""

    def __init__(self, interfaces: Iterable[InterfaceDecl] = ()):
        self._interfaces: dict[str, InterfaceDecl] = {}
        for decl in interfaces:
            self.add(decl)

    def add(self, decl: InterfaceDecl) -> None:
        if decl.name in self._interfaces:
            raise ValueError(f"duplicate interface declaration {decl.name!r}")
        self._interfaces[decl.name] = decl

    def get(self, name: str) -> InterfaceDecl | None:
        return self._interfaces.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._interfaces

    def __iter__(self):
        return iter(self._interfaces.values())

    def __len__(self) -> int:
        return len(self._interfaces)


EMPTY_SIGNATURE = Signature()
